//! The core [`DiGraph`] container.

use core::fmt;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Identifier of a node inside a [`DiGraph`].
///
/// Node ids are dense indices assigned in insertion order, which makes
/// iteration order deterministic — a property the schedulers rely on for
/// reproducible tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NodeId(pub u32);

/// Identifier of an edge inside a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
struct NodeSlot<N> {
    weight: N,
    /// Outgoing edge ids, in insertion order.
    out: Vec<EdgeId>,
    /// Incoming edge ids, in insertion order.
    inc: Vec<EdgeId>,
}

#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
struct EdgeSlot<E> {
    weight: E,
    src: NodeId,
    dst: NodeId,
}

/// A growable directed multigraph with node weights `N` and edge weights `E`.
///
/// Nodes and edges are never removed; ids stay stable for the lifetime of the
/// graph. This matches how the scheduler uses graphs (models are built once,
/// then only read) and keeps every algorithm `O(V + E)` with plain `Vec`s.
///
/// # Example
///
/// ```
/// use ftbar_graph::DiGraph;
///
/// let mut g: DiGraph<&str, u32> = DiGraph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let e = g.add_edge(a, b, 7);
/// assert_eq!(g.edge_endpoints(e), (a, b));
/// assert_eq!(g.succs(a).collect::<Vec<_>>(), vec![b]);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DiGraph<N, E> {
    nodes: Vec<NodeSlot<N>>,
    edges: Vec<EdgeSlot<E>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Creates an empty graph with pre-allocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count exceeds u32"));
        self.nodes.push(NodeSlot {
            weight,
            out: Vec::new(),
            inc: Vec::new(),
        });
        id
    }

    /// Adds a directed edge `src -> dst` and returns its id.
    ///
    /// Parallel edges and self-loops are representable (algorithms that
    /// require a DAG detect loops through [`crate::topo_order`]).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a node of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src node out of bounds");
        assert!(dst.index() < self.nodes.len(), "dst node out of bounds");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count exceeds u32"));
        self.edges.push(EdgeSlot { weight, src, dst });
        self.nodes[src.index()].out.push(id);
        self.nodes[dst.index()].inc.push(id);
        id
    }

    /// Returns a reference to a node weight.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()].weight
    }

    /// Returns a mutable reference to a node weight.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()].weight
    }

    /// Returns a reference to an edge weight.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.index()].weight
    }

    /// Returns a mutable reference to an edge weight.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.index()].weight
    }

    /// Returns the `(source, destination)` endpoints of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge_endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.index()];
        (e.src, e.dst)
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> NodeIds {
        NodeIds {
            next: 0,
            len: self.nodes.len() as u32,
        }
    }

    /// Iterates over all edges as [`EdgeRef`]s in insertion order.
    pub fn edge_refs(&self) -> Edges<'_, E> {
        Edges {
            next: 0,
            edges: &self.edges,
        }
    }

    /// Iterates over the successors of `n` (deduplicated only if the graph
    /// has no parallel edges), in edge insertion order.
    pub fn succs(&self, n: NodeId) -> Neighbors<'_, N, E> {
        Neighbors {
            graph: self,
            ids: &self.nodes[n.index()].out,
            pos: 0,
            incoming: false,
        }
    }

    /// Iterates over the predecessors of `n`, in edge insertion order.
    pub fn preds(&self, n: NodeId) -> Neighbors<'_, N, E> {
        Neighbors {
            graph: self,
            ids: &self.nodes[n.index()].inc,
            pos: 0,
            incoming: true,
        }
    }

    /// Outgoing edge ids of `n`, in insertion order.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.nodes[n.index()].out
    }

    /// Incoming edge ids of `n`, in insertion order.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.nodes[n.index()].inc
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.nodes[n.index()].out.len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.nodes[n.index()].inc.len()
    }

    /// Nodes with no incoming edges, in id order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Nodes with no outgoing edges, in id order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }

    /// Returns the first edge id from `src` to `dst`, if any.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.nodes[src.index()]
            .out
            .iter()
            .copied()
            .find(|&e| self.edges[e.index()].dst == dst)
    }

    /// True if there is an edge from `src` to `dst`.
    pub fn contains_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.find_edge(src, dst).is_some()
    }

    /// Maps node and edge weights into a new graph with identical structure.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, s)| NodeSlot {
                    weight: node_map(NodeId(i as u32), &s.weight),
                    out: s.out.clone(),
                    inc: s.inc.clone(),
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, s)| EdgeSlot {
                    weight: edge_map(EdgeId(i as u32), &s.weight),
                    src: s.src,
                    dst: s.dst,
                })
                .collect(),
        }
    }
}

/// Iterator over node ids. Created by [`DiGraph::node_ids`].
#[derive(Debug, Clone)]
pub struct NodeIds {
    next: u32,
    len: u32,
}

impl Iterator for NodeIds {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.len {
            let id = NodeId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.len - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NodeIds {}

/// A borrowed view of one edge. Yielded by [`DiGraph::edge_refs`].
#[derive(Debug, Clone, Copy)]
pub struct EdgeRef<'a, E> {
    /// Edge id.
    pub id: EdgeId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Edge weight.
    pub weight: &'a E,
}

/// Iterator over [`EdgeRef`]s. Created by [`DiGraph::edge_refs`].
#[derive(Debug, Clone)]
pub struct Edges<'a, E> {
    next: usize,
    edges: &'a [EdgeSlot<E>],
}

impl<'a, E> Iterator for Edges<'a, E> {
    type Item = EdgeRef<'a, E>;

    fn next(&mut self) -> Option<Self::Item> {
        let slot = self.edges.get(self.next)?;
        let id = EdgeId(self.next as u32);
        self.next += 1;
        Some(EdgeRef {
            id,
            src: slot.src,
            dst: slot.dst,
            weight: &slot.weight,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.edges.len() - self.next;
        (rem, Some(rem))
    }
}

impl<E> ExactSizeIterator for Edges<'_, E> {}

/// Iterator over neighbor node ids. Created by [`DiGraph::succs`] /
/// [`DiGraph::preds`].
#[derive(Debug)]
pub struct Neighbors<'a, N, E> {
    graph: &'a DiGraph<N, E>,
    ids: &'a [EdgeId],
    pos: usize,
    incoming: bool,
}

impl<N, E> Iterator for Neighbors<'_, N, E> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let e = *self.ids.get(self.pos)?;
        self.pos += 1;
        let slot = &self.graph.edges[e.index()];
        Some(if self.incoming { slot.src } else { slot.dst })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.ids.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<N, E> ExactSizeIterator for Neighbors<'_, N, E> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u32>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_ids_are_dense() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node_ids().collect::<Vec<_>>(), vec![a, b, c, d]);
    }

    #[test]
    fn neighbors_follow_insertion_order() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.succs(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.preds(d).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.succs(d).count(), 0);
        assert_eq!(g.preds(a).count(), 0);
    }

    #[test]
    fn degrees_sources_sinks() {
        let (g, [a, _b, _c, d]) = diamond();
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn edge_lookup() {
        let (g, [a, b, _c, d]) = diamond();
        assert!(g.contains_edge(a, b));
        assert!(!g.contains_edge(b, a));
        let e = g.find_edge(b, d).unwrap();
        assert_eq!(g.edge_endpoints(e), (b, d));
        assert_eq!(*g.edge(e), 3);
    }

    #[test]
    fn mutate_weights() {
        let (mut g, [a, ..]) = diamond();
        *g.node_mut(a) = "z";
        assert_eq!(*g.node(a), "z");
        let e = g.find_edge(a, NodeId(1)).unwrap();
        *g.edge_mut(e) = 99;
        assert_eq!(*g.edge(e), 99);
    }

    #[test]
    fn map_preserves_structure() {
        let (g, [a, _, _, d]) = diamond();
        let g2 = g.map(|id, w| format!("{w}{}", id.0), |_, w| *w as f64);
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g2.node(a), "a0");
        assert_eq!(g2.preds(d).count(), 2);
    }

    #[test]
    fn parallel_edges_supported() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.succs(a).collect::<Vec<_>>(), vec![b, b]);
    }

    #[test]
    #[should_panic(expected = "dst node out of bounds")]
    fn add_edge_bounds_checked() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(5), ());
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(7).to_string(), "e7");
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.sources(), Vec::<NodeId>::new());
        assert_eq!(g.node_ids().count(), 0);
    }
}
