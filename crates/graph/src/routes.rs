//! Vertex-disjoint path computation (the routing substrate).
//!
//! [`vertex_disjoint_paths`] finds up to `k` pairwise *internally*
//! vertex-disjoint paths between two nodes of an undirected multigraph,
//! using unit-capacity max-flow with node splitting (the classic
//! Suurballe-style construction): every node except the endpoints is split
//! into an in/out pair joined by a capacity-1 arc, every undirected edge
//! becomes two capacity-1 arcs, and each BFS augmentation (Edmonds–Karp,
//! so shortest paths are found first) adds one more disjoint path.
//!
//! The fault-tolerant scheduler uses this to book redundant communications
//! over routes that share no intermediate processor: a set of paths whose
//! interiors are pairwise disjoint cannot all be severed by fewer failures
//! than there are paths.
//!
//! Determinism: adjacency lists are consumed in the order given, BFS
//! explores arcs in insertion order, and flow decomposition follows the
//! lowest-index arc first — identical inputs yield identical paths.

/// One arc of the unit-capacity residual network.
#[derive(Debug, Clone, Copy)]
struct Arc {
    to: usize,
    cap: u32,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
    /// Original edge id carried by this arc (`usize::MAX` for split arcs).
    edge: usize,
}

/// Finds up to `k` internally vertex-disjoint `src → dst` paths.
///
/// `adj[v]` lists the incident edges of node `v` as `(edge_id, neighbor)`
/// pairs; parallel edges and asymmetric listings are allowed (each listed
/// pair is one usable direction). Returns each path as the `(edge_id,
/// node)` hops taken from `src`, shortest paths first. Returns an empty
/// set when `src == dst` or no path exists.
///
/// # Panics
///
/// Panics if `src` or `dst` is out of range.
pub fn vertex_disjoint_paths(
    n: usize,
    adj: &[Vec<(usize, usize)>],
    src: usize,
    dst: usize,
    k: usize,
) -> Vec<Vec<(usize, usize)>> {
    assert!(src < n && dst < n, "endpoint out of range");
    if src == dst || k == 0 {
        return Vec::new();
    }
    // Split graph: node v becomes v_in = 2v and v_out = 2v + 1.
    let node_in = |v: usize| 2 * v;
    let node_out = |v: usize| 2 * v + 1;
    let mut arcs: Vec<Arc> = Vec::new();
    let mut heads: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
    let add_arc = |heads: &mut Vec<Vec<usize>>,
                   arcs: &mut Vec<Arc>,
                   from: usize,
                   to: usize,
                   cap: u32,
                   edge: usize| {
        let a = arcs.len();
        arcs.push(Arc {
            to,
            cap,
            rev: a + 1,
            edge,
        });
        arcs.push(Arc {
            to: from,
            cap: 0,
            rev: a,
            edge,
        });
        heads[from].push(a);
        heads[to].push(a + 1);
    };
    let k = k.min(n.max(2)) as u32;
    for v in 0..n {
        // Interior nodes can carry one path; endpoints carry up to k.
        let cap = if v == src || v == dst { k } else { 1 };
        add_arc(
            &mut heads,
            &mut arcs,
            node_in(v),
            node_out(v),
            cap,
            usize::MAX,
        );
    }
    for (v, list) in adj.iter().enumerate() {
        for &(edge, w) in list {
            if w < n && w != v {
                add_arc(&mut heads, &mut arcs, node_out(v), node_in(w), 1, edge);
            }
        }
    }

    // Edmonds–Karp: augment along BFS-shortest residual paths, at most k
    // times (each augmentation adds exactly one unit of src → dst flow).
    let source = node_out(src);
    let sink = node_in(dst);
    let mut found = 0u32;
    while found < k {
        let mut prev_arc: Vec<Option<usize>> = vec![None; 2 * n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        let mut seen = vec![false; 2 * n];
        seen[source] = true;
        'bfs: while let Some(u) = queue.pop_front() {
            for &a in &heads[u] {
                let arc = arcs[a];
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    prev_arc[arc.to] = Some(a);
                    if arc.to == sink {
                        break 'bfs;
                    }
                    queue.push_back(arc.to);
                }
            }
        }
        if !seen[sink] {
            break;
        }
        let mut v = sink;
        while v != source {
            let a = prev_arc[v].expect("augmenting path reaches the source");
            arcs[a].cap -= 1;
            let rev = arcs[a].rev;
            arcs[rev].cap += 1;
            v = arcs[rev].to;
        }
        found += 1;
    }

    // Decompose the flow into paths: from src, repeatedly follow the
    // lowest-index saturated forward arc, consuming flow as we walk.
    let mut paths = Vec::with_capacity(found as usize);
    for _ in 0..found {
        let mut path = Vec::new();
        let mut v = src;
        while v != dst {
            let u = node_out(v);
            let a = heads[u]
                .iter()
                .copied()
                .find(|&a| {
                    arcs[a].edge != usize::MAX && arcs[a].rev > a && arcs[arcs[a].rev].cap > 0
                })
                .expect("flow conservation yields an outgoing saturated arc");
            let rev = arcs[a].rev;
            arcs[rev].cap -= 1;
            let edge = arcs[a].edge;
            v = arcs[a].to / 2;
            path.push((edge, v));
        }
        paths.push(path);
    }
    // Shortest first; among equal lengths keep discovery (flow) order.
    paths.sort_by_key(|p| p.len());
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Undirected helper: every edge is listed in both directions.
    fn undirected(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); n];
        for (e, &(a, b)) in edges.iter().enumerate() {
            adj[a].push((e, b));
            adj[b].push((e, a));
        }
        adj
    }

    fn assert_valid_paths(
        paths: &[Vec<(usize, usize)>],
        adj: &[Vec<(usize, usize)>],
        src: usize,
        dst: usize,
    ) {
        let mut interiors = std::collections::HashSet::new();
        for path in paths {
            let mut at = src;
            for &(edge, to) in path {
                assert!(
                    adj[at].contains(&(edge, to)),
                    "hop ({edge}, {to}) is not an edge out of {at}"
                );
                at = to;
            }
            assert_eq!(at, dst, "path must end at the destination");
            for &(_, node) in &path[..path.len() - 1] {
                assert!(interiors.insert(node), "interior node {node} reused");
            }
        }
    }

    #[test]
    fn ring_has_two_disjoint_paths() {
        // 0-1-2-3-0
        let adj = undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let paths = vertex_disjoint_paths(4, &adj, 0, 2, 4);
        assert_eq!(paths.len(), 2);
        assert_valid_paths(&paths, &adj, 0, 2);
        // Both arcs have length two on a 4-ring.
        assert_eq!(paths[0].len(), 2);
        assert_eq!(paths[1].len(), 2);
    }

    #[test]
    fn line_has_one_path() {
        let adj = undirected(3, &[(0, 1), (1, 2)]);
        let paths = vertex_disjoint_paths(3, &adj, 0, 2, 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn complete_graph_has_n_minus_one_paths() {
        let edges: Vec<(usize, usize)> = (0..4)
            .flat_map(|a| ((a + 1)..4).map(move |b| (a, b)))
            .collect();
        let adj = undirected(4, &edges);
        let paths = vertex_disjoint_paths(4, &adj, 0, 3, 8);
        assert_eq!(paths.len(), 3, "direct path plus one via each other node");
        assert_valid_paths(&paths, &adj, 0, 3);
        assert_eq!(paths[0].len(), 1, "shortest (direct) path first");
    }

    #[test]
    fn k_caps_the_path_count() {
        let edges: Vec<(usize, usize)> = (0..5)
            .flat_map(|a| ((a + 1)..5).map(move |b| (a, b)))
            .collect();
        let adj = undirected(5, &edges);
        assert_eq!(vertex_disjoint_paths(5, &adj, 0, 4, 2).len(), 2);
        assert!(vertex_disjoint_paths(5, &adj, 0, 4, 0).is_empty());
    }

    #[test]
    fn disconnected_and_trivial_cases() {
        let adj = undirected(4, &[(0, 1), (2, 3)]);
        assert!(vertex_disjoint_paths(4, &adj, 0, 3, 2).is_empty());
        assert!(vertex_disjoint_paths(4, &adj, 1, 1, 2).is_empty());
    }

    #[test]
    fn parallel_edges_give_parallel_direct_paths() {
        let adj = undirected(2, &[(0, 1), (0, 1)]);
        let paths = vertex_disjoint_paths(2, &adj, 0, 1, 4);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 1);
        assert_eq!(paths[1].len(), 1);
        assert_ne!(paths[0][0].0, paths[1][0].0, "distinct parallel edges");
    }

    #[test]
    fn deterministic() {
        let adj = undirected(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (0, 5)]);
        let a = vertex_disjoint_paths(6, &adj, 0, 5, 3);
        let b = vertex_disjoint_paths(6, &adj, 0, 5, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_valid_paths(&a, &adj, 0, 5);
    }
}
