//! Graphviz (DOT) export.
//!
//! [`Dot`] renders a [`DiGraph`] through user-supplied label closures, so any
//! node/edge weight type can be exported without trait requirements.
//!
//! ```
//! use ftbar_graph::{DiGraph, dot::Dot};
//!
//! let mut g: DiGraph<&str, u32> = DiGraph::new();
//! let a = g.add_node("in");
//! let b = g.add_node("out");
//! g.add_edge(a, b, 3);
//! let text = Dot::new(&g)
//!     .name("pipeline")
//!     .to_string_with(|_, w| w.to_string(), |_, w| format!("{w}"));
//! assert!(text.contains("digraph pipeline"));
//! assert!(text.contains("\"in\""));
//! ```

use std::fmt::Write as _;

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Builder for DOT output of a [`DiGraph`].
#[derive(Debug)]
pub struct Dot<'a, N, E> {
    graph: &'a DiGraph<N, E>,
    name: String,
    rankdir_lr: bool,
}

impl<'a, N, E> Dot<'a, N, E> {
    /// Creates a DOT exporter for `graph`.
    pub fn new(graph: &'a DiGraph<N, E>) -> Self {
        Dot {
            graph,
            name: "g".to_owned(),
            rankdir_lr: false,
        }
    }

    /// Sets the digraph name (default `g`).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Lays the graph out left-to-right instead of top-down.
    pub fn rankdir_lr(mut self) -> Self {
        self.rankdir_lr = true;
        self
    }

    /// Renders to DOT text using the provided node/edge label closures.
    pub fn to_string_with(
        &self,
        mut node_label: impl FnMut(NodeId, &N) -> String,
        mut edge_label: impl FnMut(EdgeId, &E) -> String,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {} {{", sanitize_id(&self.name));
        if self.rankdir_lr {
            let _ = writeln!(out, "  rankdir=LR;");
        }
        for v in self.graph.node_ids() {
            let label = node_label(v, self.graph.node(v));
            let _ = writeln!(out, "  {} [label={}];", v, quote(&label));
        }
        for e in self.graph.edge_refs() {
            let label = edge_label(e.id, e.weight);
            if label.is_empty() {
                let _ = writeln!(out, "  {} -> {};", e.src, e.dst);
            } else {
                let _ = writeln!(out, "  {} -> {} [label={}];", e.src, e.dst, quote(&label));
            }
        }
        out.push_str("}\n");
        out
    }
}

fn sanitize_id(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().unwrap().is_ascii_digit() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn quote(s: &str) -> String {
    let mut q = String::with_capacity(s.len() + 2);
    q.push('"');
    for c in s.chars() {
        if c == '"' || c == '\\' {
            q.push('\\');
        }
        q.push(c);
    }
    q.push('"');
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g: DiGraph<&str, f64> = DiGraph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge(a, b, 1.5);
        let dot = Dot::new(&g)
            .rankdir_lr()
            .to_string_with(|_, w| w.to_string(), |_, w| format!("{w}"));
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("rankdir=LR;"));
        assert!(dot.contains("n0 [label=\"A\"];"));
        assert!(dot.contains("n0 -> n1 [label=\"1.5\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_edge_labels_are_omitted() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let dot = Dot::new(&g).to_string_with(|id, _| id.to_string(), |_, _| String::new());
        assert!(dot.contains("n0 -> n1;"));
        assert!(!dot.contains("label=]"));
    }

    #[test]
    fn quoting_escapes_special_chars() {
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn names_are_sanitized() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let dot = Dot::new(&g)
            .name("1 weird-name")
            .to_string_with(|_, _| String::new(), |_, _| String::new());
        assert!(dot.starts_with("digraph g_1_weird_name {"));
    }
}
