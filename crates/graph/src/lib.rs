//! Directed-graph substrate for the `ftbar` workspace.
//!
//! This crate provides the small, sharp set of graph primitives that the
//! FTBAR scheduler and its models need:
//!
//! * [`DiGraph`]: a growable directed graph with typed node/edge weights,
//!   stored as index-based adjacency lists (no `unsafe`, no pointer soup);
//! * topological ordering and cycle detection ([`topo_order`],
//!   [`find_cycle`]);
//! * weighted longest-path machinery ([`longest_path_lengths`],
//!   [`top_levels`], [`bottom_levels`], [`critical_path`]);
//! * structural helpers: [`DiGraph::sources`], [`DiGraph::sinks`],
//!   reachability ([`descendants`], [`ancestors`]), level assignment
//!   ([`node_levels`]), transitive reduction ([`transitive_reduction`]);
//! * routing: k vertex-disjoint paths via unit-capacity max-flow
//!   ([`vertex_disjoint_paths`]), the substrate of fault-disjoint
//!   communication routing;
//! * symmetry: exhaustive automorphism enumeration for small undirected
//!   multigraphs ([`automorphisms`]), the substrate of the scheduler's
//!   orbit-pruned sweeps;
//! * Graphviz export ([`dot::Dot`]).
//!
//! It is written from scratch (rather than pulling in `petgraph`) so that the
//! workspace controls exactly the invariants the schedulers rely on —
//! deterministic iteration order by insertion index above all.
//!
//! # Example
//!
//! ```
//! use ftbar_graph::{DiGraph, topo_order};
//!
//! let mut g: DiGraph<&str, f64> = DiGraph::new();
//! let a = g.add_node("A");
//! let b = g.add_node("B");
//! g.add_edge(a, b, 1.5);
//! let order = topo_order(&g).expect("acyclic");
//! assert_eq!(order, vec![a, b]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
mod automorphism;
mod digraph;
pub mod dot;
mod routes;
mod topo;

pub use automorphism::{automorphisms, AUTOMORPHISM_MAX_COUNT, AUTOMORPHISM_MAX_VERTICES};

pub use algo::{
    ancestors, bottom_levels, critical_path, descendants, longest_path_lengths, node_levels,
    top_levels, transitive_reduction,
};
pub use digraph::{DiGraph, EdgeId, EdgeRef, Edges, Neighbors, NodeId, NodeIds};
pub use routes::vertex_disjoint_paths;
pub use topo::{find_cycle, is_acyclic, topo_order, CycleError};
