//! Automorphism detection for small undirected (multi/hyper)graphs.
//!
//! The scheduler uses this on the *architecture* graph: processors are
//! vertices and links are edges (point-to-point links have two endpoints,
//! buses more). An automorphism is a vertex permutation that maps the edge
//! multiset onto itself; two processors in the same automorphism orbit are
//! structurally interchangeable, which the sweep engine exploits to skip
//! redundant σ probes when the *schedule state* is also symmetric (see
//! `ftbar-core`'s orbit module).
//!
//! The search is a plain backtracking enumeration with a degree-signature
//! partition refinement up front. Architecture graphs are tiny (the paper
//! uses 4 processors; the presets top out at 8), so exhaustive enumeration
//! is cheap; the guards below keep pathological inputs bounded instead of
//! clever.

/// Vertex-count ceiling above which [`automorphisms`] gives up and returns
/// only the identity: the enumeration is exponential in the worst case
/// (`n!` for the complete graph) and the scheduler only ever consumes
/// orbit information for architecture graphs far below this.
pub const AUTOMORPHISM_MAX_VERTICES: usize = 16;

/// Result-count ceiling for [`automorphisms`]: enumeration stops after
/// this many permutations (the prefix found in lexicographic backtracking
/// order, which always includes the identity). Consumers treat the list as
/// a sound subset — missing automorphisms can only cost optimization
/// opportunities, never correctness.
pub const AUTOMORPHISM_MAX_COUNT: usize = 512;

/// Enumerates automorphisms of the undirected multigraph with `n` vertices
/// and the given edges (each edge a set of at least two endpoint indices;
/// hyperedges model buses). Returns permutations `perm` with
/// `perm[v] = image of v`, in lexicographic order; the first entry is
/// always the identity.
///
/// Parallel edges are honored as a multiset: a permutation must map each
/// edge onto an edge with the same multiplicity. Edges with out-of-range
/// endpoints or fewer than two endpoints, `n = 0`, or
/// `n > AUTOMORPHISM_MAX_VERTICES` short-circuit to just the identity
/// (callers validate their graphs elsewhere; this function never panics).
pub fn automorphisms(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let identity: Vec<usize> = (0..n).collect();
    if n == 0 || n > AUTOMORPHISM_MAX_VERTICES {
        return vec![identity];
    }
    if edges
        .iter()
        .any(|e| e.len() < 2 || e.iter().any(|&v| v >= n))
    {
        return vec![identity];
    }

    // Canonical edge multiset: each edge as its sorted endpoint list.
    let mut canon: Vec<Vec<usize>> = edges
        .iter()
        .map(|e| {
            let mut e = e.clone();
            e.sort_unstable();
            e
        })
        .collect();
    canon.sort();

    // Degree signature per vertex: sorted multiset of incident edge
    // arities. An automorphism can only map vertices with equal
    // signatures, so unmatched signatures prune whole subtrees.
    let mut sig: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &canon {
        for &v in e {
            sig[v].push(e.len());
        }
    }
    for s in &mut sig {
        s.sort_unstable();
    }

    let mut out = Vec::new();
    let mut perm = vec![usize::MAX; n];
    let mut used = vec![false; n];
    backtrack(0, n, &canon, &sig, &mut perm, &mut used, &mut out);
    debug_assert_eq!(out.first(), Some(&identity));
    out
}

fn backtrack(
    v: usize,
    n: usize,
    canon: &[Vec<usize>],
    sig: &[Vec<usize>],
    perm: &mut Vec<usize>,
    used: &mut Vec<bool>,
    out: &mut Vec<Vec<usize>>,
) {
    if out.len() >= AUTOMORPHISM_MAX_COUNT {
        return;
    }
    if v == n {
        if maps_edges(canon, perm) {
            out.push(perm.clone());
        }
        return;
    }
    for img in 0..n {
        if used[img] || sig[v] != sig[img] {
            continue;
        }
        perm[v] = img;
        used[img] = true;
        // Partial consistency: every edge fully mapped so far must land on
        // an edge of the multiset (full multiplicity is rechecked at the
        // leaf, where the complete permutation is known).
        if partial_ok(canon, perm, v + 1) {
            backtrack(v + 1, n, canon, sig, perm, used, out);
        }
        used[img] = false;
        perm[v] = usize::MAX;
    }
}

/// True if every edge whose endpoints are all assigned below `bound` maps
/// to *some* edge of the canonical multiset.
fn partial_ok(canon: &[Vec<usize>], perm: &[usize], bound: usize) -> bool {
    let mut image = Vec::new();
    for e in canon {
        if e.iter().any(|&v| v >= bound || perm[v] == usize::MAX) {
            continue;
        }
        image.clear();
        image.extend(e.iter().map(|&v| perm[v]));
        image.sort_unstable();
        if canon.binary_search(&image).is_err() {
            return false;
        }
    }
    true
}

/// True if `perm` maps the canonical edge multiset exactly onto itself
/// (multiplicities included).
fn maps_edges(canon: &[Vec<usize>], perm: &[usize]) -> bool {
    let mut image: Vec<Vec<usize>> = canon
        .iter()
        .map(|e| {
            let mut m: Vec<usize> = e.iter().map(|&v| perm[v]).collect();
            m.sort_unstable();
            m
        })
        .collect();
    image.sort();
    image == canon
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2p(pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
        pairs.iter().map(|&(a, b)| vec![a, b]).collect()
    }

    #[test]
    fn complete_graph_has_full_symmetric_group() {
        let edges = p2p(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(automorphisms(4, &edges).len(), 24);
    }

    #[test]
    fn ring_has_dihedral_group() {
        let edges = p2p(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(automorphisms(4, &edges).len(), 8);
    }

    #[test]
    fn path_has_one_flip() {
        let edges = p2p(&[(0, 1), (1, 2)]);
        let auts = automorphisms(3, &edges);
        assert_eq!(auts.len(), 2);
        assert_eq!(auts[0], vec![0, 1, 2]);
        assert_eq!(auts[1], vec![2, 1, 0]);
    }

    #[test]
    fn hypercube_has_48_automorphisms() {
        // 3-cube: vertices are bit triples, edges between Hamming-1 pairs.
        let mut pairs = Vec::new();
        for a in 0..8usize {
            for bit in 0..3 {
                let b = a ^ (1 << bit);
                if a < b {
                    pairs.push((a, b));
                }
            }
        }
        assert_eq!(automorphisms(8, &p2p(&pairs)).len(), 48);
    }

    #[test]
    fn parallel_edges_break_symmetry() {
        // Triangle with a doubled (0,1) edge: only the 0↔1 flip survives.
        let edges = p2p(&[(0, 1), (0, 1), (1, 2), (2, 0)]);
        let auts = automorphisms(3, &edges);
        assert_eq!(auts.len(), 2);
        assert_eq!(auts[1], vec![1, 0, 2]);
    }

    #[test]
    fn bus_maps_onto_bus() {
        // A 3-endpoint bus plus a (0,1) link: the flip 0↔1 fixes both.
        let edges = vec![vec![0, 1, 2], vec![0, 1]];
        let auts = automorphisms(3, &edges);
        assert_eq!(auts.len(), 2);
        assert_eq!(auts[1], vec![1, 0, 2]);
    }

    #[test]
    fn smallest_asymmetric_graph_has_identity_only() {
        // Six vertices is the smallest size admitting an asymmetric
        // graph: a path 0–1–2–3–4 plus a vertex 5 joined to 1 and 2.
        let edges = p2p(&[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (2, 5)]);
        assert_eq!(automorphisms(6, &edges).len(), 1);
    }

    #[test]
    fn oversized_graph_returns_identity() {
        let n = AUTOMORPHISM_MAX_VERTICES + 1;
        let edges = p2p(&[(0, 1)]);
        let auts = automorphisms(n, &edges);
        assert_eq!(auts.len(), 1);
        assert_eq!(auts[0], (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_edges_return_identity() {
        assert_eq!(automorphisms(3, &[vec![0]]).len(), 1);
        assert_eq!(automorphisms(3, &[vec![0, 7]]).len(), 1);
        assert_eq!(automorphisms(0, &[]).len(), 1);
    }
}
