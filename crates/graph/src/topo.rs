//! Topological ordering and cycle detection.

use core::fmt;

use crate::digraph::{DiGraph, NodeId};

/// Error returned when an algorithm requiring a DAG is given a cyclic graph.
///
/// Contains one witness cycle, as a sequence of node ids `v0 -> v1 -> ... ->
/// v0` (the first node is repeated at the end is *not* included; the cycle
/// closes from the last node back to the first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// The nodes of a witness cycle, in traversal order.
    pub cycle: Vec<NodeId>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle through ")?;
        for (i, n) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CycleError {}

/// Computes a topological order of the graph (Kahn's algorithm).
///
/// Nodes become ready in id order among equals, so the result is
/// deterministic. Runs in `O(V + E)`.
///
/// # Errors
///
/// Returns [`CycleError`] with a witness cycle if the graph is not a DAG.
///
/// # Example
///
/// ```
/// use ftbar_graph::{DiGraph, topo_order};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, c, ());
/// g.add_edge(c, b, ());
/// assert_eq!(topo_order(&g).unwrap(), vec![a, c, b]);
/// ```
pub fn topo_order<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<NodeId>, CycleError> {
    let n = graph.node_count();
    let mut in_deg: Vec<usize> = graph.node_ids().map(|v| graph.in_degree(v)).collect();
    // A sorted-by-id worklist: we pop the smallest ready id to keep the order
    // deterministic and stable under unrelated insertions.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = graph
        .node_ids()
        .filter(|v| in_deg[v.index()] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(v)) = ready.pop() {
        order.push(v);
        for s in graph.succs(v) {
            in_deg[s.index()] -= 1;
            if in_deg[s.index()] == 0 {
                ready.push(std::cmp::Reverse(s));
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(CycleError {
            cycle: find_cycle(graph).expect("kahn detected a cycle"),
        })
    }
}

/// True if the graph is a DAG.
pub fn is_acyclic<N, E>(graph: &DiGraph<N, E>) -> bool {
    topo_order(graph).is_ok()
}

/// Finds one directed cycle, if any, using iterative DFS with colors.
///
/// Returns the cycle as a node sequence (closing edge from last back to
/// first), or `None` for a DAG.
pub fn find_cycle<N, E>(graph: &DiGraph<N, E>) -> Option<Vec<NodeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = graph.node_count();
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for root in graph.node_ids() {
        if color[root.index()] != Color::White {
            continue;
        }
        // Stack of (node, next-successor-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        color[root.index()] = Color::Gray;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            let out = graph.out_edges(v);
            if *next < out.len() {
                let e = out[*next];
                *next += 1;
                let (_, w) = graph.edge_endpoints(e);
                match color[w.index()] {
                    Color::White => {
                        parent[w.index()] = Some(v);
                        color[w.index()] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Gray => {
                        // Found a back edge v -> w: reconstruct w ... v.
                        let mut cycle = vec![v];
                        let mut cur = v;
                        while cur != w {
                            cur = parent[cur.index()].expect("path to gray ancestor");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[v.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(k: usize) -> (DiGraph<(), ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..k).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        (g, ids)
    }

    #[test]
    fn topo_linear_chain() {
        let (g, ids) = linear(5);
        assert_eq!(topo_order(&g).unwrap(), ids);
    }

    #[test]
    fn topo_respects_precedence() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(c, a, ());
        g.add_edge(a, b, ());
        let order = topo_order(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(c) < pos(a));
        assert!(pos(a) < pos(b));
    }

    #[test]
    fn topo_detects_self_loop() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let err = topo_order(&g).unwrap_err();
        assert_eq!(err.cycle, vec![a]);
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn topo_detects_two_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let err = topo_order(&g).unwrap_err();
        assert_eq!(err.cycle.len(), 2);
        let msg = err.to_string();
        assert!(msg.contains("cycle"), "{msg}");
    }

    #[test]
    fn cycle_witness_is_a_real_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        g.add_edge(ids[2], ids[3], ());
        g.add_edge(ids[3], ids[1], ()); // cycle 1-2-3
        g.add_edge(ids[0], ids[4], ());
        g.add_edge(ids[4], ids[5], ());
        let cycle = find_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 3);
        for w in cycle.windows(2) {
            assert!(g.contains_edge(w[0], w[1]));
        }
        assert!(g.contains_edge(*cycle.last().unwrap(), cycle[0]));
    }

    #[test]
    fn dag_has_no_cycle() {
        let (g, _) = linear(10);
        assert!(find_cycle(&g).is_none());
        assert!(is_acyclic(&g));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(topo_order(&g).unwrap(), vec![]);
    }
}
