//! Property-based tests for `ftbar-graph` invariants.

use ftbar_graph::{
    ancestors, bottom_levels, critical_path, descendants, find_cycle, is_acyclic, node_levels,
    top_levels, topo_order, transitive_reduction, DiGraph, NodeId,
};
use proptest::prelude::*;

/// Strategy: a random DAG with `n` nodes whose edges all go from a lower
/// node id to a higher one (guaranteeing acyclicity), plus f64 weights.
fn arb_dag() -> impl Strategy<Value = (DiGraph<f64, f64>, usize)> {
    (2usize..24).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            proptest::collection::vec((0usize..n, 0usize..n, 0.0f64..10.0), 0..=max_edges.min(60)),
            proptest::collection::vec(0.1f64..10.0, n),
        )
            .prop_map(move |(raw_edges, node_ws)| {
                let mut g: DiGraph<f64, f64> = DiGraph::new();
                for w in &node_ws {
                    g.add_node(*w);
                }
                for (a, b, w) in raw_edges {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    if lo != hi && !g.contains_edge(NodeId(lo as u32), NodeId(hi as u32)) {
                        g.add_edge(NodeId(lo as u32), NodeId(hi as u32), w);
                    }
                }
                (g, n)
            })
    })
}

proptest! {
    #[test]
    fn topo_order_is_valid((g, n) in arb_dag()) {
        let order = topo_order(&g).expect("generated DAGs are acyclic");
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in g.edge_refs() {
            prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn dag_is_acyclic_and_has_no_cycle_witness((g, _) in arb_dag()) {
        prop_assert!(is_acyclic(&g));
        prop_assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn critical_path_is_max_over_nodes((g, _) in arb_dag()) {
        let nw = |v: NodeId| *g.node(v);
        let ew = |e: ftbar_graph::EdgeId| *g.edge(e);
        let (len, path) = critical_path(&g, nw, ew).unwrap();
        let bl = bottom_levels(&g, nw, ew).unwrap();
        let max_bl = g
            .node_ids()
            .filter(|&v| g.in_degree(v) == 0)
            .map(|v| bl[v.index()])
            .fold(0.0_f64, f64::max);
        prop_assert!((len - max_bl).abs() < 1e-9);
        // The returned path must be a real path whose total weight is `len`.
        let mut total = 0.0;
        for w in path.windows(2) {
            prop_assert!(g.contains_edge(w[0], w[1]));
            let e = g.find_edge(w[0], w[1]).unwrap();
            total += *g.edge(e);
        }
        for &v in &path {
            total += *g.node(v);
        }
        prop_assert!((total - len).abs() < 1e-9);
    }

    #[test]
    fn top_plus_bottom_bounded_by_cp((g, _) in arb_dag()) {
        let nw = |v: NodeId| *g.node(v);
        let ew = |e: ftbar_graph::EdgeId| *g.edge(e);
        let (len, _) = critical_path(&g, nw, ew).unwrap();
        let tl = top_levels(&g, nw, ew).unwrap();
        let bl = bottom_levels(&g, nw, ew).unwrap();
        for v in g.node_ids() {
            prop_assert!(tl[v.index()] + bl[v.index()] <= len + 1e-9);
        }
    }

    #[test]
    fn levels_increase_along_edges((g, _) in arb_dag()) {
        let lv = node_levels(&g).unwrap();
        for e in g.edge_refs() {
            prop_assert!(lv[e.src.index()] < lv[e.dst.index()]);
        }
    }

    #[test]
    fn reachability_is_consistent((g, _) in arb_dag()) {
        for v in g.node_ids() {
            let desc = descendants(&g, v);
            for u in g.node_ids() {
                if desc[u.index()] {
                    let anc = ancestors(&g, u);
                    prop_assert!(anc[v.index()]);
                }
            }
        }
    }

    #[test]
    fn transitive_reduction_preserves_reachability((g, _) in arb_dag()) {
        let redundant = transitive_reduction(&g).unwrap();
        // Rebuild without redundant edges; descendant masks must not change.
        let mut g2: DiGraph<f64, f64> = DiGraph::new();
        for v in g.node_ids() {
            g2.add_node(*g.node(v));
        }
        let redundant_set: std::collections::HashSet<_> = redundant.iter().copied().collect();
        for e in g.edge_refs() {
            if !redundant_set.contains(&e.id) {
                g2.add_edge(e.src, e.dst, *e.weight);
            }
        }
        for v in g.node_ids() {
            prop_assert_eq!(descendants(&g, v), descendants(&g2, v));
        }
    }
}
