//! Workload generators for the FTBAR benchmarks.
//!
//! * [`layered`] — the paper's §6.1 random graph model: random levels with a
//!   random number of operations each, edges from a level to higher levels,
//!   uniform execution/communication times around chosen means (the
//!   communication mean is `CCR ×` the execution mean);
//! * [`families`] — classic deterministic task-graph shapes used to widen
//!   the test corpus (chains, forks/joins, diamonds, in/out-trees, stencils,
//!   FFT butterflies, Gaussian elimination);
//! * [`arch`] — architecture generators: fully connected point-to-point
//!   meshes (the paper's 4-processor setup), rings, and single buses;
//! * [`timing`] — attaches `Exe`/`Dis` tables to any algorithm/architecture
//!   pair with controlled heterogeneity and CCR;
//! * [`presets`] — the shared seed/topology scaffolding of the integration
//!   tests and bench binaries, including the deterministic large-N
//!   (`N = 200/500/1000/2000/5000/10000`) scheduling-time instances.
//!
//! All randomness comes from a caller-provided seed; every generator is a
//! pure function of its config.
//!
//! # Example
//!
//! ```
//! use ftbar_workload::{arch, layered, timing, LayeredConfig, TimingConfig};
//!
//! let alg = layered(&LayeredConfig { n_ops: 20, seed: 7, ..Default::default() });
//! let machine = arch::fully_connected(4);
//! let problem = timing(
//!     alg,
//!     machine,
//!     &TimingConfig { ccr: 5.0, npf: 1, seed: 7, ..Default::default() },
//! )?;
//! assert_eq!(problem.alg().op_count(), 20);
//! assert_eq!(problem.arch().proc_count(), 4);
//! # Ok::<(), ftbar_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod families;
mod layered_gen;
pub mod presets;
mod timing_gen;

pub use layered_gen::{layered, LayeredConfig};
pub use presets::{campaign_problem, problem_on, reverse_topo_ops, scheduling_point, Topology};
pub use timing_gen::{timing, TimingConfig};
