//! Architecture generators.

use ftbar_model::Arch;

/// A fully connected machine: `p` processors `P0..P{p-1}` with one
/// point-to-point link `L{i}.{j}` per pair — the paper's experimental
/// topology (`P = 4`).
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn fully_connected(p: usize) -> Arch {
    assert!(p > 0, "need at least one processor");
    let mut b = Arch::builder(format!("mesh{p}"));
    let procs: Vec<_> = (0..p).map(|i| b.proc(format!("P{i}"))).collect();
    for i in 0..p {
        for j in (i + 1)..p {
            b.link(format!("L{i}.{j}"), &[procs[i], procs[j]]);
        }
    }
    b.build().expect("full meshes are valid")
}

/// A ring of `p ≥ 3` processors with point-to-point links between
/// neighbours (multi-hop routes exercise store-and-forward).
///
/// # Panics
///
/// Panics if `p < 3`.
pub fn ring(p: usize) -> Arch {
    assert!(p >= 3, "a ring needs at least three processors");
    let mut b = Arch::builder(format!("ring{p}"));
    let procs: Vec<_> = (0..p).map(|i| b.proc(format!("P{i}"))).collect();
    for i in 0..p {
        let j = (i + 1) % p;
        b.link(format!("L{i}.{j}"), &[procs[i], procs[j]]);
    }
    b.build().expect("rings are valid")
}

/// A `w × h` grid of processors with point-to-point links between
/// horizontal and vertical neighbours. Processor `P{i}` sits at
/// `(i % w, i / w)`; links are named `L{i}.{j}` for `i < j`. With both
/// dimensions ≥ 2 the grid is 2-connected, so every processor pair has two
/// vertex-disjoint routes (what route-aware booking needs for `Npf = 1`).
///
/// # Panics
///
/// Panics if fewer than two processors result (`w * h < 2`).
pub fn mesh(w: usize, h: usize) -> Arch {
    assert!(w * h >= 2, "a mesh needs at least two processors");
    let mut b = Arch::builder(format!("mesh{w}x{h}"));
    let procs: Vec<_> = (0..w * h).map(|i| b.proc(format!("P{i}"))).collect();
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                b.link(format!("L{i}.{}", i + 1), &[procs[i], procs[i + 1]]);
            }
            if y + 1 < h {
                b.link(format!("L{i}.{}", i + w), &[procs[i], procs[i + w]]);
            }
        }
    }
    b.build().expect("meshes are valid")
}

/// A `dim`-dimensional hypercube: `2^dim` processors, one point-to-point
/// link per edge (processors whose indices differ in exactly one bit). A
/// hypercube is `dim`-connected, so up to `dim` vertex-disjoint routes
/// exist between any pair.
///
/// # Panics
///
/// Panics if `dim == 0`.
pub fn hypercube(dim: usize) -> Arch {
    assert!(dim >= 1, "a hypercube needs at least one dimension");
    let n = 1usize << dim;
    let mut b = Arch::builder(format!("hcube{dim}"));
    let procs: Vec<_> = (0..n).map(|i| b.proc(format!("P{i}"))).collect();
    for i in 0..n {
        for bit in 0..dim {
            let j = i ^ (1 << bit);
            if i < j {
                b.link(format!("L{i}.{j}"), &[procs[i], procs[j]]);
            }
        }
    }
    b.build().expect("hypercubes are valid")
}

/// `p` processors on a single multipoint bus (the topology of the authors'
/// earlier ICDCS/FTPDS work; comms serialize on one medium).
///
/// # Panics
///
/// Panics if `p < 2`.
pub fn bus(p: usize) -> Arch {
    assert!(p >= 2, "a bus needs at least two processors");
    let mut b = Arch::builder(format!("bus{p}"));
    let procs: Vec<_> = (0..p).map(|i| b.proc(format!("P{i}"))).collect();
    b.link("BUS", &procs);
    b.build().expect("buses are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_shape() {
        let a = fully_connected(4);
        assert_eq!(a.proc_count(), 4);
        assert_eq!(a.link_count(), 6);
        assert!(a.is_fully_connected());
    }

    #[test]
    fn mesh_of_one() {
        let a = fully_connected(1);
        assert_eq!(a.proc_count(), 1);
        assert_eq!(a.link_count(), 0);
    }

    #[test]
    fn ring_shape() {
        let a = ring(5);
        assert_eq!(a.proc_count(), 5);
        assert_eq!(a.link_count(), 5);
        assert!(!a.is_fully_connected());
        // Opposite nodes are two hops apart.
        let p0 = a.proc_by_name("P0").unwrap();
        let p2 = a.proc_by_name("P2").unwrap();
        assert_eq!(a.route(p0, p2).len(), 2);
    }

    #[test]
    fn bus_shape() {
        let a = bus(4);
        assert_eq!(a.link_count(), 1);
        assert!(a.is_fully_connected());
    }

    #[test]
    fn mesh_grid_shape() {
        let a = mesh(3, 2);
        assert_eq!(a.proc_count(), 6);
        // 2-per-row horizontal times 2 rows + 3 vertical = 7 links.
        assert_eq!(a.link_count(), 7);
        assert!(!a.is_fully_connected());
        // Opposite corners are (w - 1) + (h - 1) hops apart.
        let p0 = a.proc_by_name("P0").unwrap();
        let p5 = a.proc_by_name("P5").unwrap();
        assert_eq!(a.route(p0, p5).len(), 3);
        // Degenerate 1-row mesh is a line.
        let line = mesh(3, 1);
        assert_eq!(line.link_count(), 2);
    }

    #[test]
    fn hypercube_shape() {
        let a = hypercube(3);
        assert_eq!(a.proc_count(), 8);
        assert_eq!(a.link_count(), 12, "dim * 2^(dim-1) edges");
        assert!(!a.is_fully_connected());
        // Antipodal nodes are `dim` hops apart.
        let p0 = a.proc_by_name("P0").unwrap();
        let p7 = a.proc_by_name("P7").unwrap();
        assert_eq!(a.route(p0, p7).len(), 3);
        // dim = 1 is a connected pair.
        let duo = hypercube(1);
        assert_eq!(duo.proc_count(), 2);
        assert_eq!(duo.link_count(), 1);
    }

    #[test]
    fn mesh_and_hypercube_offer_disjoint_routes() {
        use ftbar_model::RouteTable;
        let a = mesh(2, 2);
        let t = RouteTable::build(&a, 2);
        for src in a.procs() {
            for dst in a.procs() {
                if src != dst {
                    assert_eq!(t.all(src, dst).len(), 2, "mesh {src} -> {dst}");
                }
            }
        }
        let a = hypercube(3);
        let t = RouteTable::build(&a, 3);
        for src in a.procs() {
            for dst in a.procs() {
                if src != dst {
                    assert_eq!(t.all(src, dst).len(), 3, "hcube {src} -> {dst}");
                }
            }
        }
    }
}
