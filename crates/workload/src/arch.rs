//! Architecture generators.

use ftbar_model::Arch;

/// A fully connected machine: `p` processors `P0..P{p-1}` with one
/// point-to-point link `L{i}.{j}` per pair — the paper's experimental
/// topology (`P = 4`).
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn fully_connected(p: usize) -> Arch {
    assert!(p > 0, "need at least one processor");
    let mut b = Arch::builder(format!("mesh{p}"));
    let procs: Vec<_> = (0..p).map(|i| b.proc(format!("P{i}"))).collect();
    for i in 0..p {
        for j in (i + 1)..p {
            b.link(format!("L{i}.{j}"), &[procs[i], procs[j]]);
        }
    }
    b.build().expect("full meshes are valid")
}

/// A ring of `p ≥ 3` processors with point-to-point links between
/// neighbours (multi-hop routes exercise store-and-forward).
///
/// # Panics
///
/// Panics if `p < 3`.
pub fn ring(p: usize) -> Arch {
    assert!(p >= 3, "a ring needs at least three processors");
    let mut b = Arch::builder(format!("ring{p}"));
    let procs: Vec<_> = (0..p).map(|i| b.proc(format!("P{i}"))).collect();
    for i in 0..p {
        let j = (i + 1) % p;
        b.link(format!("L{i}.{j}"), &[procs[i], procs[j]]);
    }
    b.build().expect("rings are valid")
}

/// `p` processors on a single multipoint bus (the topology of the authors'
/// earlier ICDCS/FTPDS work; comms serialize on one medium).
///
/// # Panics
///
/// Panics if `p < 2`.
pub fn bus(p: usize) -> Arch {
    assert!(p >= 2, "a bus needs at least two processors");
    let mut b = Arch::builder(format!("bus{p}"));
    let procs: Vec<_> = (0..p).map(|i| b.proc(format!("P{i}"))).collect();
    b.link("BUS", &procs);
    b.build().expect("buses are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_shape() {
        let a = fully_connected(4);
        assert_eq!(a.proc_count(), 4);
        assert_eq!(a.link_count(), 6);
        assert!(a.is_fully_connected());
    }

    #[test]
    fn mesh_of_one() {
        let a = fully_connected(1);
        assert_eq!(a.proc_count(), 1);
        assert_eq!(a.link_count(), 0);
    }

    #[test]
    fn ring_shape() {
        let a = ring(5);
        assert_eq!(a.proc_count(), 5);
        assert_eq!(a.link_count(), 5);
        assert!(!a.is_fully_connected());
        // Opposite nodes are two hops apart.
        let p0 = a.proc_by_name("P0").unwrap();
        let p2 = a.proc_by_name("P2").unwrap();
        assert_eq!(a.route(p0, p2).len(), 2);
    }

    #[test]
    fn bus_shape() {
        let a = bus(4);
        assert_eq!(a.link_count(), 1);
        assert!(a.is_fully_connected());
    }
}
