//! Classic deterministic task-graph families.
//!
//! These widen the test corpus beyond the paper's layered random graphs
//! with the standard shapes of the scheduling literature. All are `comp`
//! operations with unit-size dependencies; attach times with
//! [`crate::timing`].

use ftbar_model::{Alg, OpId};

/// A linear chain `C0 -> C1 -> … -> C{n-1}`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: usize) -> Alg {
    assert!(n > 0);
    let mut b = Alg::builder(format!("chain{n}"));
    let ops: Vec<OpId> = (0..n).map(|i| b.comp(format!("C{i}"))).collect();
    for w in ops.windows(2) {
        b.dep(w[0], w[1]);
    }
    b.build().expect("chains are valid")
}

/// Fork-join: one source fanning out to `width` parallel tasks joined by
/// one sink (`n = width + 2` operations).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn fork_join(width: usize) -> Alg {
    assert!(width > 0);
    let mut b = Alg::builder(format!("forkjoin{width}"));
    let src = b.comp("SRC");
    let sink = b.comp("SINK");
    for i in 0..width {
        let mid = b.comp(format!("W{i}"));
        b.dep(src, mid);
        b.dep(mid, sink);
    }
    b.build().expect("fork-joins are valid")
}

/// A complete out-tree (every node has `arity` children) with `depth`
/// levels.
///
/// # Panics
///
/// Panics if `arity == 0` or `depth == 0`.
pub fn out_tree(arity: usize, depth: usize) -> Alg {
    assert!(arity > 0 && depth > 0);
    let mut b = Alg::builder(format!("outtree{arity}x{depth}"));
    let root = b.comp("N0");
    let mut frontier = vec![root];
    let mut next_id = 1usize;
    for _ in 1..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..arity {
                let child = b.comp(format!("N{next_id}"));
                next_id += 1;
                b.dep(parent, child);
                next.push(child);
            }
        }
        frontier = next;
    }
    b.build().expect("out-trees are valid")
}

/// A complete in-tree: the mirror of [`out_tree`] (reduction).
///
/// # Panics
///
/// Panics if `arity == 0` or `depth == 0`.
pub fn in_tree(arity: usize, depth: usize) -> Alg {
    assert!(arity > 0 && depth > 0);
    let mut b = Alg::builder(format!("intree{arity}x{depth}"));
    // Build level by level from the leaves toward the root.
    let mut width = arity.pow(depth as u32 - 1);
    let mut next_id = 0usize;
    let mut frontier: Vec<OpId> = (0..width)
        .map(|_| {
            let op = b.comp(format!("N{next_id}"));
            next_id += 1;
            op
        })
        .collect();
    while width > 1 {
        width /= arity;
        let parents: Vec<OpId> = (0..width)
            .map(|_| {
                let op = b.comp(format!("N{next_id}"));
                next_id += 1;
                op
            })
            .collect();
        for (i, &child) in frontier.iter().enumerate() {
            b.dep(child, parents[i / arity]);
        }
        frontier = parents;
    }
    b.build().expect("in-trees are valid")
}

/// The diamond/stencil DAG of a `rows × cols` wavefront computation:
/// task `(i, j)` depends on `(i-1, j)` and `(i, j-1)`.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn stencil(rows: usize, cols: usize) -> Alg {
    assert!(rows > 0 && cols > 0);
    let mut b = Alg::builder(format!("stencil{rows}x{cols}"));
    let mut grid = vec![vec![None; cols]; rows];
    for (i, row) in grid.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = Some(b.comp(format!("S{i}_{j}")));
        }
    }
    for i in 0..rows {
        for j in 0..cols {
            let me = grid[i][j].unwrap();
            if i > 0 {
                b.dep(grid[i - 1][j].unwrap(), me);
            }
            if j > 0 {
                b.dep(grid[i][j - 1].unwrap(), me);
            }
        }
    }
    b.build().expect("stencils are valid")
}

/// The task graph of an `n`-point FFT (`n` a power of two): `log2 n`
/// butterfly ranks of `n` tasks each, plus an input rank.
///
/// # Panics
///
/// Panics if `n < 2` or `n` is not a power of two.
pub fn fft(n: usize) -> Alg {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "n must be a power of two >= 2"
    );
    let ranks = n.trailing_zeros() as usize;
    let mut b = Alg::builder(format!("fft{n}"));
    let mut prev: Vec<OpId> = (0..n).map(|i| b.comp(format!("X0_{i}"))).collect();
    for r in 1..=ranks {
        let cur: Vec<OpId> = (0..n).map(|i| b.comp(format!("X{r}_{i}"))).collect();
        let stride = n >> r;
        for i in 0..n {
            let partner = i ^ stride;
            b.dep(prev[i], cur[i]);
            b.dep(prev[partner], cur[i]);
        }
        prev = cur;
    }
    b.build().expect("fft graphs are valid")
}

/// The task graph of Gaussian elimination on an `n × n` matrix: pivot task
/// `P_k` feeds update tasks `U_{k,j}` (`j > k`), which feed the next pivot.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn gaussian_elimination(n: usize) -> Alg {
    assert!(n >= 2);
    let mut b = Alg::builder(format!("gauss{n}"));
    let mut prev_updates: Vec<Option<OpId>> = vec![None; n + 1];
    for k in 0..n - 1 {
        let pivot = b.comp(format!("P{k}"));
        if let Some(u) = prev_updates[k + 1] {
            b.dep(u, pivot);
        }
        let mut row = vec![None; n + 1];
        for j in k + 1..n {
            let upd = b.comp(format!("U{k}_{j}"));
            b.dep(pivot, upd);
            if let Some(u) = prev_updates[j] {
                b.dep(u, upd);
            }
            row[j] = Some(upd);
        }
        prev_updates = row;
    }
    b.build().expect("gaussian elimination graphs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let a = chain(5);
        assert_eq!(a.op_count(), 5);
        assert_eq!(a.dep_count(), 4);
        assert_eq!(a.entry_ops().len(), 1);
        assert_eq!(a.exit_ops().len(), 1);
    }

    #[test]
    fn fork_join_shape() {
        let a = fork_join(6);
        assert_eq!(a.op_count(), 8);
        assert_eq!(a.dep_count(), 12);
        let src = a.op_by_name("SRC").unwrap();
        assert_eq!(a.succs(src).count(), 6);
    }

    #[test]
    fn out_tree_shape() {
        let a = out_tree(2, 4);
        assert_eq!(a.op_count(), 15); // 1 + 2 + 4 + 8
        assert_eq!(a.dep_count(), 14);
        assert_eq!(a.entry_ops().len(), 1);
        assert_eq!(a.exit_ops().len(), 8);
    }

    #[test]
    fn in_tree_shape() {
        let a = in_tree(2, 4);
        assert_eq!(a.op_count(), 15);
        assert_eq!(a.entry_ops().len(), 8);
        assert_eq!(a.exit_ops().len(), 1);
    }

    #[test]
    fn stencil_shape() {
        let a = stencil(3, 4);
        assert_eq!(a.op_count(), 12);
        assert_eq!(a.dep_count(), 2 * 3 * 4 - 3 - 4);
        assert_eq!(a.entry_ops().len(), 1);
    }

    #[test]
    fn fft_shape() {
        let a = fft(8);
        assert_eq!(a.op_count(), 8 * 4); // input rank + 3 butterfly ranks
        assert_eq!(a.dep_count(), 8 * 3 * 2);
        assert_eq!(a.entry_ops().len(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_requires_power_of_two() {
        let _ = fft(6);
    }

    #[test]
    fn gauss_shape() {
        let a = gaussian_elimination(4);
        // pivots: P0..P2; updates: 3 + 2 + 1.
        assert_eq!(a.op_count(), 3 + 6);
        assert_eq!(a.entry_ops().len(), 1);
    }

    #[test]
    fn all_families_schedule() {
        use crate::arch::fully_connected;
        use crate::timing_gen::{timing, TimingConfig};
        for alg in [
            chain(6),
            fork_join(4),
            out_tree(2, 3),
            in_tree(2, 3),
            stencil(3, 3),
            fft(4),
            gaussian_elimination(4),
        ] {
            let name = alg.name().to_owned();
            let p = timing(
                alg,
                fully_connected(3),
                &TimingConfig {
                    npf: 1,
                    seed: 11,
                    ..Default::default()
                },
            )
            .unwrap();
            let s = ftbar_core::ftbar::schedule(&p).unwrap();
            let v = ftbar_core::validate::validate(&p, &s);
            assert!(v.is_empty(), "{name}: {v:#?}");
        }
    }
}
