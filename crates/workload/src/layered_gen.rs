//! The paper's random algorithm-graph generator (§6.1).
//!
//! > "Given the number of operations N, we randomly generate a set of levels
//! > with a random number of operations. Then, operations at a given level
//! > are randomly connected to operations at a higher level."

use ftbar_model::{Alg, OpId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the layered random DAG generator.
#[derive(Debug, Clone)]
pub struct LayeredConfig {
    /// Total number of operations `N`.
    pub n_ops: usize,
    /// Average operations per level (level widths are uniform in
    /// `1..=2*avg_width-1`).
    pub avg_width: usize,
    /// Probability that a given (lower-level op, higher-level op) pair is
    /// connected. Every non-entry op gets at least one predecessor so the
    /// graph stays a single phase.
    pub edge_prob: f64,
    /// How far edges may jump: an edge from level `l` goes to a level in
    /// `l+1 ..= l+max_jump`.
    pub max_jump: usize,
    /// RNG seed (generators are pure functions of the config).
    pub seed: u64,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            n_ops: 20,
            avg_width: 4,
            edge_prob: 0.35,
            max_jump: 2,
            seed: 0,
        }
    }
}

/// Generates a random layered algorithm graph.
///
/// Operation names are `T0..T{N-1}`; all operations are `comp` (the paper's
/// simulations have no `mem`/`extio` distinction).
///
/// # Panics
///
/// Panics if `n_ops == 0`, `avg_width == 0`, or `edge_prob` is not in
/// `[0, 1]`.
pub fn layered(config: &LayeredConfig) -> Alg {
    assert!(config.n_ops > 0, "n_ops must be positive");
    assert!(config.avg_width > 0, "avg_width must be positive");
    assert!(
        (0.0..=1.0).contains(&config.edge_prob),
        "edge_prob must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Partition N into levels of random width.
    let mut levels: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    while next < config.n_ops {
        let w = rng.gen_range(1..=2 * config.avg_width - 1);
        let w = w.min(config.n_ops - next);
        levels.push((next..next + w).collect());
        next += w;
    }

    let mut b = Alg::builder(format!("layered_n{}_s{}", config.n_ops, config.seed));
    let ops: Vec<OpId> = (0..config.n_ops).map(|i| b.comp(format!("T{i}"))).collect();
    let mut has_pred = vec![false; config.n_ops];

    let jump = config.max_jump.max(1);
    for (li, level) in levels.iter().enumerate() {
        for &src in level {
            for (lj, target_level) in levels.iter().enumerate().skip(li + 1) {
                if lj - li > jump {
                    break;
                }
                for &dst in target_level {
                    if rng.gen_bool(config.edge_prob) {
                        b.dep(ops[src], ops[dst]);
                        has_pred[dst] = true;
                    }
                }
            }
        }
    }
    // Connectivity guarantee: every op beyond level 0 gets at least one
    // predecessor from the previous level.
    for (li, level) in levels.iter().enumerate().skip(1) {
        for &dst in level {
            if !has_pred[dst] {
                let prev = &levels[li - 1];
                let src = prev[rng.gen_range(0..prev.len())];
                b.dep(ops[src], ops[dst]);
                has_pred[dst] = true;
            }
        }
    }
    b.build().expect("layered generation yields a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_op_count() {
        for n in [1, 5, 10, 40, 80] {
            let alg = layered(&LayeredConfig {
                n_ops: n,
                seed: 42,
                ..Default::default()
            });
            assert_eq!(alg.op_count(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = LayeredConfig {
            n_ops: 30,
            seed: 7,
            ..Default::default()
        };
        let a = layered(&c);
        let b = layered(&c);
        assert_eq!(a.dep_count(), b.dep_count());
        for (da, db) in a.deps().zip(b.deps()) {
            assert_eq!(a.dep_endpoints(da), b.dep_endpoints(db));
        }
        let c2 = LayeredConfig { seed: 8, ..c };
        let other = layered(&c2);
        // Overwhelmingly likely to differ.
        assert!(
            a.dep_count() != other.dep_count()
                || a.deps()
                    .zip(other.deps())
                    .any(|(x, y)| a.dep_endpoints(x) != other.dep_endpoints(y))
        );
    }

    #[test]
    fn every_non_entry_has_a_pred() {
        let alg = layered(&LayeredConfig {
            n_ops: 50,
            edge_prob: 0.05, // sparse: orphan fix-up must kick in
            seed: 3,
            ..Default::default()
        });
        // All ops are reachable: exactly the level-0 ops are entries.
        let entries = alg.entry_ops();
        assert!(!entries.is_empty());
        for op in alg.ops() {
            if !entries.contains(&op) {
                assert!(alg.preds(op).count() >= 1);
            }
        }
    }

    #[test]
    fn edges_go_forward_only() {
        let alg = layered(&LayeredConfig {
            n_ops: 60,
            seed: 9,
            ..Default::default()
        });
        // Names encode generation order; edges must go from lower to higher
        // indices (levels are index ranges).
        for dep in alg.deps() {
            let (s, d) = alg.dep_endpoints(dep);
            let si: usize = alg.op(s).name()[1..].parse().unwrap();
            let di: usize = alg.op(d).name()[1..].parse().unwrap();
            assert!(si < di);
        }
    }

    #[test]
    fn single_op_graph() {
        let alg = layered(&LayeredConfig {
            n_ops: 1,
            seed: 0,
            ..Default::default()
        });
        assert_eq!(alg.op_count(), 1);
        assert_eq!(alg.dep_count(), 0);
    }
}
