//! Shared problem presets: one place for the seed/topology scaffolding the
//! integration tests, property suites, and bench binaries used to copy.
//!
//! Two families:
//!
//! * [`problem_on`] — a layered random problem on one of the four
//!   supported [`Topology`] families, with the same generator parameters
//!   the cross-engine and incremental-sweep suites have always used (so
//!   pinned golden schedules keep matching);
//! * [`scheduling_point`] — the deterministic problems behind the
//!   committed `BENCH_scheduling.json` scheduling-time points, including
//!   the large-N presets (`N = 200/500/1000/2000/5000/10000`). Parameters
//!   are part of the
//!   perf trajectory: changing them invalidates every committed median.

use ftbar_model::Problem;

use crate::{arch, layered, timing, LayeredConfig, TimingConfig};

/// The topology families every engine/optimization must agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Fully connected 4-processor machine (the paper's model).
    Full,
    /// 4-processor ring (multi-hop routes, store-and-forward).
    Ring,
    /// 3×2 mesh.
    Mesh,
    /// 3-dimensional hypercube.
    Hypercube,
}

impl Topology {
    /// All four families, in the order property tests index them.
    pub const ALL: [Topology; 4] = [
        Topology::Full,
        Topology::Ring,
        Topology::Mesh,
        Topology::Hypercube,
    ];

    /// Deterministic family from an arbitrary index (property-test draw).
    pub fn from_index(index: usize) -> Topology {
        Self::ALL[index % Self::ALL.len()]
    }

    /// The family's architecture instance.
    pub fn arch(self) -> ftbar_model::Arch {
        match self {
            Topology::Full => arch::fully_connected(4),
            Topology::Ring => arch::ring(4),
            Topology::Mesh => arch::mesh(3, 2),
            Topology::Hypercube => arch::hypercube(3),
        }
    }

    /// Short label for test/bench diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Full => "full",
            Topology::Ring => "ring4",
            Topology::Mesh => "mesh3x2",
            Topology::Hypercube => "hypercube3",
        }
    }
}

/// A layered random problem on `topology` with `n_ops` operations,
/// communication-to-computation ratio `ccr`, `Npf = 1`, and otherwise
/// default generator parameters — the scaffolding shared by the
/// cross-engine and incremental-sweep suites.
pub fn problem_on(topology: Topology, n_ops: usize, ccr: f64, seed: u64) -> Problem {
    let alg = layered(&LayeredConfig {
        n_ops,
        seed,
        ..Default::default()
    });
    timing(
        alg,
        topology.arch(),
        &TimingConfig {
            ccr,
            npf: 1,
            seed,
            ..Default::default()
        },
    )
    .expect("generated problems are valid")
}

/// The deterministic problem behind the `scheduling_time` /
/// `BENCH_scheduling.json` point at `n_ops` operations: fully connected
/// 4-processor machine, CCR 5, `Npf = 1`, seed `40_000 + n_ops`. Used by
/// `perf_gate`, the Criterion benches, and the large-N property tests, so
/// every consumer measures the exact same instance.
pub fn scheduling_point(n_ops: usize) -> Problem {
    problem_on(Topology::Full, n_ops, 5.0, 40_000 + n_ops as u64)
}

/// The deterministic problem behind the `scenarios_per_sec` /
/// contingency-campaign bench points at `n_ops` operations on `topology`:
/// CCR 1, `Npf = 1`, seed `60_000 + n_ops`. Like [`scheduling_point`],
/// the parameters are part of the perf trajectory — changing them
/// invalidates every committed campaign median.
pub fn campaign_problem(topology: Topology, n_ops: usize) -> Problem {
    problem_on(topology, n_ops, 1.0, 60_000 + n_ops as u64)
}

/// Operation names in reverse topological order — sink operations first,
/// entries last, ties broken by operation id (deterministic).
///
/// Edit pickers probing for a *deep* invalidation frontier (an edit whose
/// bottom-level ripple stays near the end of the placement sequence) walk
/// this order: the closer an operation sits to the sinks, the fewer
/// ancestors see their bottom level move when its timing changes.
pub fn reverse_topo_ops(alg: &ftbar_model::Alg) -> Vec<String> {
    let n = alg.op_count();
    let mut out_deg = vec![0usize; n];
    for op in alg.ops() {
        out_deg[op.index()] = alg.sched_succs(op).count();
    }
    let mut ready: std::collections::VecDeque<_> =
        alg.ops().filter(|o| out_deg[o.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(op) = ready.pop_front() {
        order.push(alg.op(op).name().to_owned());
        for (_, pred) in alg.sched_preds(op) {
            out_deg[pred.index()] -= 1;
            if out_deg[pred.index()] == 0 {
                ready.push_back(pred);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "algorithm graphs are acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_cycle_deterministically() {
        assert_eq!(Topology::from_index(0), Topology::Full);
        assert_eq!(Topology::from_index(5), Topology::Ring);
        for t in Topology::ALL {
            assert!(t.arch().proc_count() >= 4, "{} too small", t.name());
        }
    }

    #[test]
    fn campaign_problem_is_deterministic() {
        let p = campaign_problem(Topology::Ring, 16);
        assert_eq!(p.alg().op_count(), 16);
        assert_eq!(p.npf(), 1);
        let q = campaign_problem(Topology::Ring, 16);
        assert_eq!(
            ftbar_core_free_probe(&p),
            ftbar_core_free_probe(&q),
            "presets must be deterministic"
        );
    }

    #[test]
    fn scheduling_point_matches_its_parameters() {
        let p = scheduling_point(20);
        assert_eq!(p.alg().op_count(), 20);
        assert_eq!(p.arch().proc_count(), 4);
        assert_eq!(p.npf(), 1);
        // Pure function of the size: regenerating gives the same problem.
        let q = scheduling_point(20);
        assert_eq!(p.alg().op_count(), q.alg().op_count());
        assert_eq!(
            ftbar_core_free_probe(&p),
            ftbar_core_free_probe(&q),
            "presets must be deterministic"
        );
    }

    /// A cheap deterministic fingerprint without depending on ftbar-core.
    fn ftbar_core_free_probe(p: &Problem) -> (usize, usize, u32) {
        (p.alg().dep_count(), p.arch().link_count(), p.npf())
    }

    #[test]
    fn reverse_topo_puts_sinks_before_their_preds() {
        let p = scheduling_point(50);
        let order = reverse_topo_ops(p.alg());
        assert_eq!(order.len(), 50);
        let pos = |name: &str| order.iter().position(|o| o == name).unwrap();
        for op in p.alg().ops() {
            for (_, succ) in p.alg().sched_succs(op) {
                let succ_name = p.alg().op(succ).name();
                assert!(
                    pos(succ_name) < pos(p.alg().op(op).name()),
                    "successor {succ_name} must precede its predecessor"
                );
            }
        }
        // Deterministic: same problem, same order.
        assert_eq!(order, reverse_topo_ops(scheduling_point(50).alg()));
    }
}
