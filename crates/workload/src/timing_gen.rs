//! Timing assignment: builds `Exe`/`Dis` tables for an
//! algorithm/architecture pair (§6.1).
//!
//! Execution times are uniform around `mean_exec`; communication times are
//! uniform around `ccr × mean_exec` (the definition of the paper's
//! communication-to-computation ratio). `heterogeneity` scales each
//! processor/link by its own uniform factor, turning the homogeneous
//! simulation setup into the heterogeneous benchmark of the paper's §7.

use ftbar_model::{Alg, Arch, CommTable, ExecTable, ModelError, Problem, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of [`timing`].
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Mean execution time (time units).
    pub mean_exec: f64,
    /// Communication-to-computation ratio: mean comm = `ccr × mean_exec`.
    pub ccr: f64,
    /// Half-width of the uniform distributions, as a fraction of the mean
    /// (`0.5` ⇒ `U[0.5µ, 1.5µ]`, the classic scheduling-literature choice).
    pub spread: f64,
    /// Per-processor / per-link speed heterogeneity: each resource draws a
    /// factor in `U[1 - h, 1 + h]`. `0` reproduces the paper's homogeneous
    /// §6 setup.
    pub heterogeneity: f64,
    /// Probability that an ⟨op, proc⟩ pair is forbidden (`Dis` constraint).
    /// Feasibility (`npf + 1` processors per op) is preserved.
    pub forbid_prob: f64,
    /// Number of tolerated failures recorded in the problem.
    pub npf: u32,
    /// Optional real-time constraint.
    pub rtc: Option<Time>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            mean_exec: 1.0,
            ccr: 1.0,
            spread: 0.5,
            heterogeneity: 0.0,
            forbid_prob: 0.0,
            npf: 1,
            rtc: None,
            seed: 0,
        }
    }
}

fn uniform_around(rng: &mut StdRng, mean: f64, spread: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let lo = mean * (1.0 - spread);
    let hi = mean * (1.0 + spread);
    if hi <= lo {
        mean
    } else {
        rng.gen_range(lo..hi)
    }
}

/// Builds a [`Problem`] by drawing `Exe`/`Dis` tables for `alg` on `arch`.
///
/// # Errors
///
/// Propagates [`ModelError`] from problem validation (only reachable with
/// contradictory configs, e.g. `npf + 1 > proc_count`).
///
/// # Panics
///
/// Panics if a mean/spread/probability parameter is out of range.
pub fn timing(alg: Alg, arch: Arch, config: &TimingConfig) -> Result<Problem, ModelError> {
    assert!(config.mean_exec > 0.0, "mean_exec must be positive");
    assert!(config.ccr >= 0.0, "ccr must be non-negative");
    assert!(
        (0.0..1.0).contains(&config.spread),
        "spread must be in [0, 1)"
    );
    assert!(
        (0.0..1.0).contains(&config.heterogeneity),
        "heterogeneity must be in [0, 1)"
    );
    assert!(
        (0.0..1.0).contains(&config.forbid_prob),
        "forbid_prob must be a probability below 1"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    let proc_factor: Vec<f64> = (0..arch.proc_count())
        .map(|_| uniform_around(&mut rng, 1.0, config.heterogeneity))
        .collect();
    let link_factor: Vec<f64> = (0..arch.link_count())
        .map(|_| uniform_around(&mut rng, 1.0, config.heterogeneity))
        .collect();

    let k = config.npf as usize + 1;
    let mut exec = ExecTable::new(alg.op_count(), arch.proc_count());
    for op in alg.ops() {
        // Draw the base time once per op so processors differ only by their
        // speed factor.
        let base = uniform_around(&mut rng, config.mean_exec, config.spread);
        let mut allowed: Vec<bool> = (0..arch.proc_count())
            .map(|_| !rng.gen_bool(config.forbid_prob))
            .collect();
        // Keep feasibility: force-allow processors until k are available.
        let mut available = allowed.iter().filter(|&&a| a).count();
        let mut i = 0;
        while available < k && i < allowed.len() {
            if !allowed[i] {
                allowed[i] = true;
                available += 1;
            }
            i += 1;
        }
        for proc in arch.procs() {
            if allowed[proc.index()] {
                let t = (base * proc_factor[proc.index()]).max(0.001);
                exec.set(op, proc, Time::from_units(t));
            }
        }
    }

    let mean_comm = config.ccr * config.mean_exec;
    let mut comm = CommTable::new(alg.dep_count(), arch.link_count());
    for dep in alg.deps() {
        let base = uniform_around(&mut rng, mean_comm, config.spread);
        for link in arch.links() {
            let t = base * link_factor[link.index()];
            comm.set(dep, link, Time::from_units(t));
        }
    }

    let mut b = Problem::builder(alg, arch, exec, comm);
    b.npf(config.npf);
    if let Some(rtc) = config.rtc {
        b.rtc(rtc);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::fully_connected;
    use crate::layered_gen::{layered, LayeredConfig};

    fn alg20(seed: u64) -> Alg {
        layered(&LayeredConfig {
            n_ops: 20,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn ccr_is_respected_on_average() {
        for ccr in [0.1, 1.0, 5.0] {
            let p = timing(
                alg20(1),
                fully_connected(4),
                &TimingConfig {
                    ccr,
                    seed: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            let measured = p.ccr();
            assert!(
                (measured / ccr - 1.0).abs() < 0.35,
                "ccr {ccr}: measured {measured}"
            );
        }
    }

    #[test]
    fn homogeneous_tables_when_heterogeneity_zero() {
        let p = timing(
            alg20(2),
            fully_connected(3),
            &TimingConfig {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for op in p.alg().ops() {
            let times: Vec<_> = p
                .arch()
                .procs()
                .map(|pr| p.exec().get(op, pr).unwrap())
                .collect();
            assert!(times.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn heterogeneity_varies_processors() {
        let p = timing(
            alg20(3),
            fully_connected(3),
            &TimingConfig {
                heterogeneity: 0.5,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let any_varies = p.alg().ops().any(|op| {
            let times: Vec<_> = p
                .arch()
                .procs()
                .map(|pr| p.exec().get(op, pr).unwrap())
                .collect();
            times.windows(2).any(|w| w[0] != w[1])
        });
        assert!(any_varies);
    }

    #[test]
    fn forbid_prob_keeps_feasibility() {
        let p = timing(
            alg20(4),
            fully_connected(4),
            &TimingConfig {
                forbid_prob: 0.7,
                npf: 1,
                seed: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for op in p.alg().ops() {
            assert!(p.exec().allowed_procs(op).count() >= 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = TimingConfig {
            ccr: 2.0,
            seed: 5,
            ..Default::default()
        };
        let a = timing(alg20(5), fully_connected(4), &c).unwrap();
        let b = timing(alg20(5), fully_connected(4), &c).unwrap();
        for op in a.alg().ops() {
            for pr in a.arch().procs() {
                assert_eq!(a.exec().get(op, pr), b.exec().get(op, pr));
            }
        }
    }

    #[test]
    fn generated_problems_schedule_end_to_end() {
        let p = timing(
            alg20(6),
            fully_connected(4),
            &TimingConfig {
                ccr: 5.0,
                npf: 1,
                seed: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let s = ftbar_core::ftbar::schedule(&p).unwrap();
        assert!(ftbar_core::validate::validate(&p, &s).is_empty());
    }
}
