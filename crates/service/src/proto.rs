//! The JSON-lines request/response protocol of the scheduling daemon.
//!
//! One request per line, one response line per request, both UTF-8 JSON.
//! Requests:
//!
//! ```json
//! {"op": "schedule", "id": "r1", "spec": "algorithm a { ... }",
//!  "scheduler": "ftbar", "npf": 1, "strategy": "adaptive",
//!  "timeout_ms": 2000, "include_schedule": false}
//! {"op": "reschedule", "id": "r2", "spec": "algorithm a { ... }",
//!  "edit": {"kind": "tweak_exec", "op": "A", "proc": "P1", "units": 2.5}}
//! {"op": "status"}
//! {"op": "snapshot"}
//! {"op": "shutdown"}
//! ```
//!
//! `reschedule` carries the same fields as `schedule` (they identify the
//! *parent* problem) plus an `edit` object; the daemon answers exactly
//! what `schedule` would answer for the edited problem, repairing the
//! parent's retained schedule incrementally when it can. Edit kinds and
//! their fields: `tweak_exec` (`op`, `proc`, `units`), `tweak_comm`
//! (`src`, `dst`, `units`), `allow_proc` (`op`, `proc`, `units`),
//! `forbid_proc` (`op`, `proc`), `proc_down` (`proc`), `proc_up`
//! (`proc`, `units`), `link_down` (`link`), `link_up` (`link`, `units`),
//! `add_op` (`name`, `units`, `preds`, `succs`, `comm_units`),
//! `remove_op` (`name`), `set_npf` (`npf`). A structurally malformed
//! `edit` answers `bad_request`; an edit that does not *apply* (unknown
//! names, bad values, invalid edited problem) answers `bad_edit`.
//!
//! Responses are rendered with a stable field order so identical requests
//! produce byte-identical response lines (the cache contract). Every
//! failure maps to exactly one documented [`ErrorCode`].

use ftbar_core::edit::ProblemEdit;
use ftbar_core::ftbar::SweepStrategy;
use serde::Value;

use crate::{JobResult, SchedulerKind};

/// Documented error codes: the complete failure vocabulary of the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame is not valid JSON, or required fields are missing/typed
    /// wrong.
    BadRequest,
    /// The frame exceeds the configured maximum size.
    TooLarge,
    /// The spec text failed to parse or validate.
    SpecError,
    /// The scheduler rejected the (valid) problem.
    ScheduleError,
    /// The per-request deadline elapsed before a worker finished the job.
    Timeout,
    /// Admission control rejected the request (queue full).
    Overloaded,
    /// This exact request previously panicked a worker and is refused
    /// without being re-run.
    Poisoned,
    /// A worker panicked while scheduling this request.
    InternalPanic,
    /// The daemon is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The edit of a `reschedule` request does not apply to its problem
    /// (unknown names, bad values, or the edited problem is invalid).
    BadEdit,
    /// An on-demand snapshot could not be taken (no snapshot path
    /// configured, or the write failed).
    SnapshotError,
}

impl ErrorCode {
    /// The wire name of the code.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::SpecError => "spec_error",
            ErrorCode::ScheduleError => "schedule_error",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Poisoned => "poisoned",
            ErrorCode::InternalPanic => "internal_panic",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::BadEdit => "bad_edit",
            ErrorCode::SnapshotError => "snapshot_error",
        }
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Schedule a problem.
    Schedule(ScheduleRequest),
    /// Edit a previously scheduled problem and schedule the result,
    /// repairing the parent's retained schedule when possible.
    Reschedule(RescheduleRequest),
    /// Report daemon health and counters.
    Status,
    /// Write a durable state snapshot now.
    Snapshot,
    /// Drain in-flight work and exit.
    Shutdown,
}

/// The `op: "schedule"` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// Caller-chosen id echoed in the response (JSON string), if any.
    pub id: Option<String>,
    /// Problem spec text.
    pub spec: String,
    /// Scheduler to run.
    pub scheduler: SchedulerKind,
    /// `npf` override applied before scheduling.
    pub npf: Option<u32>,
    /// Sweep strategy; `None` means the scheduler default (adaptive).
    pub strategy: Option<SweepStrategy>,
    /// Per-request deadline override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Include the full schedule in the response.
    pub include_schedule: bool,
}

impl ScheduleRequest {
    /// The exact raw cache/poison key of this request: every field that
    /// shapes the response, joined with the spec text verbatim.
    pub fn raw_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.scheduler.name(),
            strategy_name(self.strategy),
            self.npf.map_or(-1i64, i64::from),
            u8::from(self.include_schedule),
            self.spec,
        )
    }
}

/// The `op: "reschedule"` request body: the parent problem (same fields
/// as a schedule request) plus the edit to apply to it.
#[derive(Debug, Clone, PartialEq)]
pub struct RescheduleRequest {
    /// The parent request — identifies the problem being edited and how
    /// the answer should be rendered.
    pub base: ScheduleRequest,
    /// The edit to apply.
    pub edit: ProblemEdit,
}

impl RescheduleRequest {
    /// The exact raw cache/poison key: the parent's key, namespaced, plus
    /// the edit's deterministic description.
    pub fn raw_key(&self) -> String {
        format!(
            "reschedule|{}|{}",
            self.edit.describe(),
            self.base.raw_key()
        )
    }
}

/// The stable wire name of a strategy choice.
pub fn strategy_name(s: Option<SweepStrategy>) -> &'static str {
    match s {
        None | Some(SweepStrategy::Adaptive) => "adaptive",
        Some(SweepStrategy::Incremental) => "incremental",
        Some(SweepStrategy::Naive) => "naive",
        Some(SweepStrategy::Clustered) => "clustered",
    }
}

/// Inverse of [`strategy_name`]: `None` for an unknown name. A restored
/// snapshot written by a newer daemon may carry strategy names this build
/// does not know; the caller drops such records instead of guessing.
pub fn strategy_from_name(name: &str) -> Option<SweepStrategy> {
    match name {
        "adaptive" => Some(SweepStrategy::Adaptive),
        "incremental" => Some(SweepStrategy::Incremental),
        "naive" => Some(SweepStrategy::Naive),
        "clustered" => Some(SweepStrategy::Clustered),
        _ => None,
    }
}

/// Renders an edit as the JSON object [`parse_edit`] reads back — the
/// serialization used by snapshot artifact seeds. Round-trip exact:
/// `parse_edit_json(&render_edit(e)) == Ok(e)` for every edit.
pub fn render_edit(e: &ProblemEdit) -> String {
    let f = |units: f64| {
        serde_json::to_string(&Value::Number(serde::Number::Float(units)))
            .expect("numbers serialize")
    };
    let s = json_string;
    let names = |items: &[String]| {
        let quoted: Vec<String> = items.iter().map(|n| json_string(n)).collect();
        format!("[{}]", quoted.join(", "))
    };
    match e {
        ProblemEdit::TweakExec { op, proc, units } => format!(
            "{{\"kind\": \"tweak_exec\", \"op\": {}, \"proc\": {}, \"units\": {}}}",
            s(op),
            s(proc),
            f(*units)
        ),
        ProblemEdit::TweakComm { src, dst, units } => format!(
            "{{\"kind\": \"tweak_comm\", \"src\": {}, \"dst\": {}, \"units\": {}}}",
            s(src),
            s(dst),
            f(*units)
        ),
        ProblemEdit::AllowProc { op, proc, units } => format!(
            "{{\"kind\": \"allow_proc\", \"op\": {}, \"proc\": {}, \"units\": {}}}",
            s(op),
            s(proc),
            f(*units)
        ),
        ProblemEdit::ForbidProc { op, proc } => format!(
            "{{\"kind\": \"forbid_proc\", \"op\": {}, \"proc\": {}}}",
            s(op),
            s(proc)
        ),
        ProblemEdit::ProcDown { proc } => {
            format!("{{\"kind\": \"proc_down\", \"proc\": {}}}", s(proc))
        }
        ProblemEdit::ProcUp { proc, units } => format!(
            "{{\"kind\": \"proc_up\", \"proc\": {}, \"units\": {}}}",
            s(proc),
            f(*units)
        ),
        ProblemEdit::LinkDown { link } => {
            format!("{{\"kind\": \"link_down\", \"link\": {}}}", s(link))
        }
        ProblemEdit::LinkUp { link, units } => format!(
            "{{\"kind\": \"link_up\", \"link\": {}, \"units\": {}}}",
            s(link),
            f(*units)
        ),
        ProblemEdit::AddOp {
            name,
            units,
            preds,
            succs,
            comm_units,
        } => format!(
            "{{\"kind\": \"add_op\", \"name\": {}, \"units\": {}, \"preds\": {}, \
             \"succs\": {}, \"comm_units\": {}}}",
            s(name),
            f(*units),
            names(preds),
            names(succs),
            f(*comm_units)
        ),
        ProblemEdit::RemoveOp { name } => {
            format!("{{\"kind\": \"remove_op\", \"name\": {}}}", s(name))
        }
        ProblemEdit::SetNpf { npf } => format!("{{\"kind\": \"set_npf\", \"npf\": {npf}}}"),
    }
}

/// Parses one request frame. `Err` carries the message for a
/// [`ErrorCode::BadRequest`] response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("request must be a JSON object".into());
    }
    let op = match v.get("op") {
        None => "schedule",
        Some(o) => o.as_str().ok_or("`op` must be a string")?,
    };
    match op {
        "status" => Ok(Request::Status),
        "snapshot" => Ok(Request::Snapshot),
        "shutdown" => Ok(Request::Shutdown),
        "schedule" => Ok(Request::Schedule(parse_schedule_fields(&v)?)),
        "reschedule" => {
            let base = parse_schedule_fields(&v)?;
            let edit = parse_edit(v.get("edit").ok_or("`edit` (object) is required")?)?;
            Ok(Request::Reschedule(RescheduleRequest { base, edit }))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Parses the shared schedule/reschedule fields of a request object.
fn parse_schedule_fields(v: &Value) -> Result<ScheduleRequest, String> {
    {
        let id = match v.get("id") {
            None => None,
            Some(i) => Some(
                i.as_str()
                    .map(str::to_owned)
                    .ok_or("`id` must be a string")?,
            ),
        };
        let spec = v
            .get("spec")
            .and_then(Value::as_str)
            .ok_or("`spec` (string) is required")?
            .to_owned();
        let scheduler = match v.get("scheduler") {
            None => SchedulerKind::Ftbar,
            Some(s) => match s.as_str() {
                Some("ftbar") => SchedulerKind::Ftbar,
                Some("hbp") => SchedulerKind::Hbp,
                _ => return Err("`scheduler` must be \"ftbar\" or \"hbp\"".into()),
            },
        };
        let npf = match v.get("npf") {
            None => None,
            Some(n) => Some(parse_u32(n).ok_or("`npf` must be a non-negative integer")?),
        };
        let strategy = match v.get("strategy") {
            None => None,
            Some(s) => Some(match s.as_str() {
                Some("adaptive") => SweepStrategy::Adaptive,
                Some("incremental") => SweepStrategy::Incremental,
                Some("naive") => SweepStrategy::Naive,
                Some("clustered") => SweepStrategy::Clustered,
                _ => return Err("`strategy` must be adaptive|incremental|naive|clustered".into()),
            }),
        };
        let timeout_ms = match v.get("timeout_ms") {
            None => None,
            Some(t) => Some(parse_u64(t).ok_or("`timeout_ms` must be a non-negative integer")?),
        };
        let include_schedule = match v.get("include_schedule") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("`include_schedule` must be a boolean".into()),
        };
        Ok(ScheduleRequest {
            id,
            spec,
            scheduler,
            npf,
            strategy,
            timeout_ms,
            include_schedule,
        })
    }
}

/// Parses a standalone `edit` object from JSON text — the CLI front door
/// to [`parse_edit`] (the daemon parses edits embedded in request frames).
///
/// # Errors
///
/// A human-readable message when the text is not valid JSON or not a
/// well-formed edit object.
pub fn parse_edit_json(text: &str) -> Result<ProblemEdit, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    parse_edit(&v)
}

/// Parses the `edit` object of a `reschedule` request into a
/// [`ProblemEdit`]. `Err` carries the message for a
/// [`ErrorCode::BadRequest`] response (the edit is structurally
/// malformed; edits that are well-formed but do not *apply* answer
/// [`ErrorCode::BadEdit`] later).
pub fn parse_edit(v: &Value) -> Result<ProblemEdit, String> {
    if v.as_object().is_none() {
        return Err("`edit` must be a JSON object".into());
    }
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("`edit.kind` (string) is required")?;
    let str_field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or(format!("`edit.{name}` (string) is required"))
    };
    let units_field = |name: &str| -> Result<f64, String> {
        match v.get(name) {
            Some(Value::Number(n)) => Ok(n.as_f64()),
            _ => Err(format!("`edit.{name}` (number) is required")),
        }
    };
    let names_field = |name: &str| -> Result<Vec<String>, String> {
        match v.get(name) {
            None => Ok(Vec::new()),
            Some(Value::Array(items)) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_owned)
                        .ok_or(format!("`edit.{name}` must be an array of strings"))
                })
                .collect(),
            Some(_) => Err(format!("`edit.{name}` must be an array of strings")),
        }
    };
    match kind {
        "tweak_exec" => Ok(ProblemEdit::TweakExec {
            op: str_field("op")?,
            proc: str_field("proc")?,
            units: units_field("units")?,
        }),
        "tweak_comm" => Ok(ProblemEdit::TweakComm {
            src: str_field("src")?,
            dst: str_field("dst")?,
            units: units_field("units")?,
        }),
        "allow_proc" => Ok(ProblemEdit::AllowProc {
            op: str_field("op")?,
            proc: str_field("proc")?,
            units: units_field("units")?,
        }),
        "forbid_proc" => Ok(ProblemEdit::ForbidProc {
            op: str_field("op")?,
            proc: str_field("proc")?,
        }),
        "proc_down" => Ok(ProblemEdit::ProcDown {
            proc: str_field("proc")?,
        }),
        "proc_up" => Ok(ProblemEdit::ProcUp {
            proc: str_field("proc")?,
            units: units_field("units")?,
        }),
        "link_down" => Ok(ProblemEdit::LinkDown {
            link: str_field("link")?,
        }),
        "link_up" => Ok(ProblemEdit::LinkUp {
            link: str_field("link")?,
            units: units_field("units")?,
        }),
        "add_op" => Ok(ProblemEdit::AddOp {
            name: str_field("name")?,
            units: units_field("units")?,
            preds: names_field("preds")?,
            succs: names_field("succs")?,
            comm_units: units_field("comm_units")?,
        }),
        "remove_op" => Ok(ProblemEdit::RemoveOp {
            name: str_field("name")?,
        }),
        "set_npf" => {
            let npf = v
                .get("npf")
                .and_then(parse_u32)
                .ok_or("`edit.npf` must be a non-negative integer")?;
            Ok(ProblemEdit::SetNpf { npf })
        }
        other => Err(format!("unknown edit kind `{other}`")),
    }
}

fn parse_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Number(serde::Number::UInt(u)) => Some(*u),
        _ => None,
    }
}

fn parse_u32(v: &Value) -> Option<u32> {
    parse_u64(v).and_then(|u| u32::try_from(u).ok())
}

/// Renders the success response for a scheduled job. Deterministic: the
/// byte-identity contract between cached and direct responses rests on
/// this function.
pub fn render_ok(id: Option<&str>, r: &JobResult, degraded: bool) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str(&format!(
        "\"status\": \"ok\", \"scheduler\": \"{}\", \"npf\": {}, \"ops\": {}, \
         \"procs\": {}, \"makespan\": \"{}\", \"makespan_ticks\": {}, \
         \"completion_ticks\": {}, \"replicas\": {}, \"comms\": {}, \"rtc_met\": {}",
        r.scheduler.name(),
        r.npf,
        r.ops,
        r.procs,
        r.makespan,
        r.makespan.ticks(),
        r.completion.ticks(),
        r.replicas,
        r.comms,
        match r.rtc_met {
            Some(b) => b.to_string(),
            None => "null".to_owned(),
        },
    ));
    if degraded {
        out.push_str(", \"degraded\": true");
    }
    if let Some(schedule) = &r.schedule {
        let json = serde_json::to_string(schedule).expect("schedules serialize");
        out.push_str(&format!(", \"schedule\": {json}"));
    }
    out.push('}');
    out
}

/// Renders an error response with a documented code.
pub fn render_error(id: Option<&str>, code: ErrorCode, message: &str) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str(&format!(
        "\"status\": \"error\", \"code\": \"{}\", \"message\": {}",
        code.name(),
        json_string(message)
    ));
    out.push('}');
    out
}

/// Splices `id` into a response body rendered without one (cached bodies
/// are id-less so distinct callers can share them). With `id: None` this
/// is the identity, so cached and directly rendered responses are
/// byte-identical.
pub fn with_id(id: Option<&str>, body: &str) -> String {
    match id {
        None => body.to_owned(),
        Some(id) => {
            debug_assert!(body.starts_with('{'));
            format!("{{\"id\": {}, {}", json_string(id), &body[1..])
        }
    }
}

fn push_id(out: &mut String, id: Option<&str>) {
    if let Some(id) = id {
        out.push_str(&format!("\"id\": {}, ", json_string(id)));
    }
}

fn json_string(s: &str) -> String {
    serde_json::to_string(s).expect("strings serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_requests() {
        let r = parse_request(r#"{"spec": "x"}"#).unwrap();
        let Request::Schedule(s) = r else {
            panic!("expected schedule")
        };
        assert_eq!(s.scheduler, SchedulerKind::Ftbar);
        assert_eq!(s.npf, None);
        assert!(!s.include_schedule);

        let r = parse_request(
            r#"{"op": "schedule", "id": "a", "spec": "x", "scheduler": "hbp",
                "npf": 2, "strategy": "naive", "timeout_ms": 50,
                "include_schedule": true}"#,
        )
        .unwrap();
        let Request::Schedule(s) = r else {
            panic!("expected schedule")
        };
        assert_eq!(s.id.as_deref(), Some("a"));
        assert_eq!(s.scheduler, SchedulerKind::Hbp);
        assert_eq!(s.npf, Some(2));
        assert_eq!(s.strategy, Some(SweepStrategy::Naive));
        assert_eq!(s.timeout_ms, Some(50));
        assert!(s.include_schedule);

        assert_eq!(
            parse_request(r#"{"op": "status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"op": "snapshot"}"#).unwrap(),
            Request::Snapshot
        );
        assert_eq!(
            parse_request(r#"{"op": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            SweepStrategy::Adaptive,
            SweepStrategy::Incremental,
            SweepStrategy::Naive,
            SweepStrategy::Clustered,
        ] {
            assert_eq!(strategy_from_name(strategy_name(Some(s))), Some(s));
        }
        assert_eq!(strategy_from_name("turbo"), None);
    }

    #[test]
    fn render_edit_round_trips_every_kind() {
        let edits = [
            ProblemEdit::TweakExec {
                op: "A".into(),
                proc: "P \"1\"".into(),
                units: 2.5,
            },
            ProblemEdit::TweakComm {
                src: "A".into(),
                dst: "B".into(),
                units: 0.125,
            },
            ProblemEdit::AllowProc {
                op: "A".into(),
                proc: "P1".into(),
                units: 3.0,
            },
            ProblemEdit::ForbidProc {
                op: "A".into(),
                proc: "P1".into(),
            },
            ProblemEdit::ProcDown { proc: "P2".into() },
            ProblemEdit::ProcUp {
                proc: "P2".into(),
                units: 1.5,
            },
            ProblemEdit::LinkDown { link: "L0".into() },
            ProblemEdit::LinkUp {
                link: "L0".into(),
                units: 7.0,
            },
            ProblemEdit::AddOp {
                name: "N".into(),
                units: 1.0,
                preds: vec!["A".into(), "B".into()],
                succs: vec![],
                comm_units: 0.5,
            },
            ProblemEdit::RemoveOp { name: "A".into() },
            ProblemEdit::SetNpf { npf: 2 },
        ];
        for edit in edits {
            let json = render_edit(&edit);
            assert_eq!(
                parse_edit_json(&json).as_ref(),
                Ok(&edit),
                "round-trip failed for {json}"
            );
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            r#"{"op": "frobnicate"}"#,
            r#"{"op": "schedule"}"#,
            r#"{"spec": 7}"#,
            r#"{"spec": "x", "scheduler": "lpt"}"#,
            r#"{"spec": "x", "npf": -1}"#,
            r#"{"spec": "x", "npf": 1.5}"#,
            r#"{"spec": "x", "strategy": "magic"}"#,
            r#"{"spec": "x", "timeout_ms": "soon"}"#,
            r#"{"spec": "x", "include_schedule": "yes"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "expected Err for {bad:?}");
        }
    }

    #[test]
    fn raw_key_separates_response_shaping_fields() {
        let base = ScheduleRequest {
            id: None,
            spec: "s".into(),
            scheduler: SchedulerKind::Ftbar,
            npf: None,
            strategy: None,
            timeout_ms: None,
            include_schedule: false,
        };
        let mut keys = vec![base.raw_key()];
        let mut variant = base.clone();
        variant.scheduler = SchedulerKind::Hbp;
        keys.push(variant.raw_key());
        let mut variant = base.clone();
        variant.npf = Some(0);
        keys.push(variant.raw_key());
        let mut variant = base.clone();
        variant.strategy = Some(SweepStrategy::Clustered);
        keys.push(variant.raw_key());
        let mut variant = base.clone();
        variant.include_schedule = true;
        keys.push(variant.raw_key());
        // `id` and `timeout_ms` do NOT shape the cached body.
        let mut variant = base.clone();
        variant.id = Some("x".into());
        variant.timeout_ms = Some(9);
        assert_eq!(variant.raw_key(), base.raw_key());
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 5, "every shaping field must separate keys");
    }

    #[test]
    fn parses_reschedule_requests() {
        let r = parse_request(
            r#"{"op": "reschedule", "id": "e1", "spec": "x",
                "edit": {"kind": "tweak_exec", "op": "A", "proc": "P1", "units": 2.5}}"#,
        )
        .unwrap();
        let Request::Reschedule(r) = r else {
            panic!("expected reschedule")
        };
        assert_eq!(r.base.id.as_deref(), Some("e1"));
        assert_eq!(
            r.edit,
            ProblemEdit::TweakExec {
                op: "A".into(),
                proc: "P1".into(),
                units: 2.5
            }
        );

        let r = parse_request(
            r#"{"op": "reschedule", "spec": "x",
                "edit": {"kind": "add_op", "name": "N", "units": 1,
                         "preds": ["A"], "succs": [], "comm_units": 0.5}}"#,
        )
        .unwrap();
        let Request::Reschedule(r) = r else {
            panic!("expected reschedule")
        };
        assert_eq!(r.edit.kind(), "add_op");

        let r = parse_request(
            r#"{"op": "reschedule", "spec": "x", "edit": {"kind": "set_npf", "npf": 2}}"#,
        )
        .unwrap();
        assert!(matches!(
            r,
            Request::Reschedule(RescheduleRequest {
                edit: ProblemEdit::SetNpf { npf: 2 },
                ..
            })
        ));
    }

    #[test]
    fn rejects_malformed_edits() {
        for bad in [
            r#"{"op": "reschedule", "spec": "x"}"#,
            r#"{"op": "reschedule", "spec": "x", "edit": 7}"#,
            r#"{"op": "reschedule", "spec": "x", "edit": {}}"#,
            r#"{"op": "reschedule", "spec": "x", "edit": {"kind": "frobnicate"}}"#,
            r#"{"op": "reschedule", "spec": "x", "edit": {"kind": "tweak_exec"}}"#,
            r#"{"op": "reschedule", "spec": "x",
                "edit": {"kind": "tweak_exec", "op": "A", "proc": "P1", "units": "fast"}}"#,
            r#"{"op": "reschedule", "spec": "x",
                "edit": {"kind": "add_op", "name": "N", "units": 1,
                         "preds": [3], "comm_units": 1}}"#,
            r#"{"op": "reschedule", "spec": "x", "edit": {"kind": "set_npf", "npf": -1}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "expected Err for {bad:?}");
        }
    }

    #[test]
    fn reschedule_raw_key_separates_edits_and_parents() {
        let base = ScheduleRequest {
            id: None,
            spec: "s".into(),
            scheduler: SchedulerKind::Ftbar,
            npf: None,
            strategy: None,
            timeout_ms: None,
            include_schedule: false,
        };
        let e1 = RescheduleRequest {
            base: base.clone(),
            edit: ProblemEdit::SetNpf { npf: 1 },
        };
        let e2 = RescheduleRequest {
            base: base.clone(),
            edit: ProblemEdit::SetNpf { npf: 2 },
        };
        let mut other = base.clone();
        other.spec = "t".into();
        let e3 = RescheduleRequest {
            base: other,
            edit: ProblemEdit::SetNpf { npf: 1 },
        };
        assert_ne!(e1.raw_key(), e2.raw_key());
        assert_ne!(e1.raw_key(), e3.raw_key());
        // Never collides with a plain schedule request's key space.
        assert!(e1.raw_key().starts_with("reschedule|"));
    }

    #[test]
    fn error_rendering_is_stable() {
        assert_eq!(
            render_error(Some("r1"), ErrorCode::Timeout, "deadline elapsed"),
            r#"{"id": "r1", "status": "error", "code": "timeout", "message": "deadline elapsed"}"#
        );
        assert_eq!(
            render_error(None, ErrorCode::BadRequest, "nope"),
            r#"{"status": "error", "code": "bad_request", "message": "nope"}"#
        );
    }
}
