//! Batched multi-problem scheduling — the service layer over the
//! [`ftbar_core::engine`] pipeline.
//!
//! The papers this repo leans on (Dwork–Halpern–Waarts on performing work
//! under faults, Goemans–Lynch–Saias on fault-tolerance bounds) frame the
//! production regime as *many independent fault-tolerant work items at
//! high throughput*, not one problem at a time. This crate is that
//! regime's front door: submit a batch of independent scheduling
//! [`JobSpec`]s, get one [`JobOutcome`] per job — or fan a whole
//! contingency campaign ([`run_campaign`], backed by
//! [`ftbar_sim::scenario`]) across the same worker pool.
//!
//! Guarantees:
//!
//! * **Determinism** — each job is a pure function of its spec, results
//!   are returned in submission order, and the output is bit-identical
//!   for every worker count (`--jobs 1` and `--jobs 4` agree; pinned by
//!   `tests/batch_service.rs`).
//! * **Isolation** — a poisoned job (unparsable spec, infeasible `npf`,
//!   unschedulable problem, or a worker panic caught at the job boundary)
//!   yields an `Err` in *its* slot; every other job completes normally.
//! * **Steady-state allocation** — each worker thread recycles one
//!   [`EnginePools`] arena through all the jobs it runs
//!   ([`ftbar_core::ftbar::schedule_with_pools`]), so per-job setup does
//!   not re-grow the plan/undo/cache buffers.
//!
//! Work is distributed over the vendored crossbeam scoped threads by an
//! atomic job cursor; ordering is restored by submission index, so the
//! (nondeterministic) claim order never leaks into results.
//!
//! Beyond one-shot batches, the crate hosts the long-lived scheduling
//! daemon: [`server`] (listener, admission control, panic isolation,
//! graceful degradation, clean shutdown), [`cache`] (canonical-key
//! memoization with byte-budget LRU eviction), [`proto`] (the JSON-lines
//! wire protocol and its documented error codes), [`client`] (retrying
//! requester + persistent pipelined connection), [`persist`] (crash-safe
//! snapshot/restore of the cache, artifact seeds, and poisoned set for
//! warm restarts), and [`chaos`] (the deterministic fault-injection
//! harness — including restart campaigns against the snapshot files —
//! that proves the daemon survives all of the above).

// `deny` (not `forbid`) solely for the one `#[allow]` in `signal`: the
// SIGTERM latch needs a C signal handler; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod persist;
pub mod proto;
pub mod server;
pub mod signal;

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel::Sender;

use ftbar_core::engine::EnginePools;
use ftbar_core::{ftbar, FtbarConfig, Schedule};
use ftbar_model::{spec, Problem};
use ftbar_sim::scenario;

/// Which scheduler a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// FTBAR (paper §4.2), default configuration.
    #[default]
    Ftbar,
    /// The HBP comparison baseline.
    Hbp,
}

impl SchedulerKind {
    /// Stable lowercase name, as used in the JSON output and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Ftbar => "ftbar",
            SchedulerKind::Hbp => "hbp",
        }
    }
}

/// The problem a job schedules.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// Spec-language text, parsed and validated inside the job (so a bad
    /// spec poisons only its own slot).
    Spec(String),
    /// An already-validated problem.
    Problem(Box<Problem>),
    /// A job poisoned before submission (e.g. an unreadable spec file):
    /// fails with this message, in its own slot, like any other error.
    Invalid(String),
}

/// One independent scheduling job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Caller-chosen label, echoed in the result (e.g. the spec path).
    pub name: String,
    /// The problem to schedule.
    pub input: JobInput,
    /// Scheduler to run.
    pub scheduler: SchedulerKind,
    /// Override the spec's `npf` (applied before scheduling; an
    /// infeasible value poisons only this job).
    pub npf: Option<u32>,
}

/// Batch driver configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads (`--jobs`). Clamped to at least 1; `1` runs
    /// serially on the caller's thread.
    pub jobs: usize,
    /// Retain each job's full [`Schedule`] in its [`JobResult`] (the
    /// summary metrics are always present).
    pub keep_schedules: bool,
    /// Fault-injection hook for tests and the chaos harness: a job whose
    /// name or spec text contains this marker panics inside the job
    /// boundary, exercising the panic-isolation path. `None` in
    /// production.
    pub panic_marker: Option<String>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            jobs: 1,
            keep_schedules: false,
            panic_marker: None,
        }
    }
}

/// Metrics of one successfully scheduled job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Scheduler that ran.
    pub scheduler: SchedulerKind,
    /// Effective `npf` (after any override).
    pub npf: u32,
    /// Operation count of the problem.
    pub ops: usize,
    /// Processor count of the architecture.
    pub procs: usize,
    /// Makespan of the schedule.
    pub makespan: ftbar_model::Time,
    /// Completion instant (= makespan for these schedulers).
    pub completion: ftbar_model::Time,
    /// Total replicas booked.
    pub replicas: usize,
    /// Total comms booked.
    pub comms: usize,
    /// Whether the real-time constraint was met; `None` without an `Rtc`.
    pub rtc_met: Option<bool>,
    /// The schedule itself, when [`BatchConfig::keep_schedules`] was set.
    pub schedule: Option<Schedule>,
}

/// One job's slot in the batch output.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Submission index (results are returned in this order).
    pub index: usize,
    /// The job's label.
    pub name: String,
    /// The job's result; `Err` carries a human-readable message and
    /// affects no other slot.
    pub result: Result<JobResult, String>,
}

/// Runs `n` indexed work items across `workers` pooled threads and
/// returns the results in index order.
///
/// The shared fan-out core of [`run_batch`] and [`run_campaign`]: an
/// atomic cursor hands out indices, each worker recycles one `S` scratch
/// value (its per-worker arena) through every item it claims, and slots
/// are reassembled by index — so as long as `work` is a pure function of
/// its index, the output is byte-identical for every worker count.
/// `workers <= 1` runs serially on the caller's thread.
pub fn run_indexed<S, T>(
    n: usize,
    workers: usize,
    work: impl Fn(usize, &mut S) -> T + Sync,
) -> Vec<T>
where
    S: Default + Send,
    T: Send,
{
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        let mut state = S::default();
        return (0..n).map(|i| work(i, &mut state)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, T)>();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let tx: Sender<(usize, T)> = tx.clone();
            let cursor = &cursor;
            let work = &work;
            s.spawn(move || {
                // One recycled scratch value per worker, threaded through
                // every item it claims.
                let mut state = S::default();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, work(i, &mut state))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Restore index order: claim order is racy, slots are not.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, out) in rx {
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every item reports exactly once"))
            .collect()
    })
}

/// Runs every job and returns one outcome per job, in submission order.
///
/// The output is a pure function of `jobs` and
/// [`BatchConfig::keep_schedules`] — the worker count only changes
/// wall-clock time, never a byte of the results.
pub fn run_batch(jobs: &[JobSpec], config: &BatchConfig) -> Vec<JobOutcome> {
    run_indexed(jobs.len(), config.jobs, |i, pools: &mut EnginePools| {
        let taken = std::mem::take(pools);
        // Job-boundary panic isolation: a panicking job lands in its own
        // `Err` slot instead of poisoning the scoped join. `mem::take`
        // already left fresh pools in place for the worker's next job.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(i, &jobs[i], config, taken)
        })) {
            Ok((outcome, p)) => {
                *pools = p;
                outcome
            }
            Err(payload) => JobOutcome {
                index: i,
                name: jobs[i].name.clone(),
                result: Err(format!("job panicked: {}", panic_message(payload.as_ref()))),
            },
        }
    })
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// Runs a whole contingency campaign (see [`ftbar_sim::scenario`]) for
/// one `(problem, schedule)` pair across `workers` pooled threads.
///
/// Scenario generation and report assembly are single-threaded and
/// deterministic; only the (pure) per-scenario replays fan out, and their
/// results are reassembled by scenario index — the report is
/// byte-identical for every worker count, mirroring [`run_batch`].
pub fn run_campaign(
    problem: &Problem,
    schedule: &Schedule,
    config: &scenario::ScenarioConfig,
    workers: usize,
) -> scenario::ReliabilityReport {
    let scenarios = scenario::generate(problem, schedule, config);
    let deadline = config.deadline.unwrap_or_else(|| schedule.completion());
    let results: Vec<scenario::ScenarioResult> =
        run_indexed(scenarios.len(), workers, |i, (): &mut ()| {
            scenario::evaluate(problem, schedule, &scenarios[i], deadline)
        });
    scenario::assemble(problem, schedule, config, &scenarios, &results)
}

/// Runs one job, recycling `pools` (returned for the worker's next job).
fn run_job(
    index: usize,
    job: &JobSpec,
    config: &BatchConfig,
    pools: EnginePools,
) -> (JobOutcome, EnginePools) {
    let (result, pools) = job_result(job, config, pools);
    (
        JobOutcome {
            index,
            name: job.name.clone(),
            result,
        },
        pools,
    )
}

fn job_result(
    job: &JobSpec,
    config: &BatchConfig,
    pools: EnginePools,
) -> (Result<JobResult, String>, EnginePools) {
    // Chaos/test hook: deliberately panic inside the job boundary.
    if let Some(marker) = &config.panic_marker {
        let hit = job.name.contains(marker.as_str())
            || matches!(&job.input, JobInput::Spec(s) if s.contains(marker.as_str()));
        if hit {
            panic!("injected panic (marker `{marker}`)");
        }
    }
    // Parse/validate inside the job: bad inputs poison only this slot.
    let parsed;
    let mut problem: &Problem = match &job.input {
        JobInput::Spec(text) => match spec::parse_problem(text) {
            Ok(p) => {
                parsed = p;
                &parsed
            }
            Err(e) => return (Err(format!("spec error: {e}")), pools),
        },
        JobInput::Problem(p) => p,
        JobInput::Invalid(message) => return (Err(message.clone()), pools),
    };
    let overridden;
    if let Some(npf) = job.npf {
        match problem.with_npf(npf) {
            Ok(p) => {
                overridden = p;
                problem = &overridden;
            }
            Err(e) => return (Err(format!("npf override: {e}")), pools),
        }
    }
    let (schedule, pools) = match job.scheduler {
        SchedulerKind::Ftbar => {
            match ftbar::schedule_with_pools(problem, &FtbarConfig::default(), pools) {
                Ok((outcome, pools)) => (outcome.schedule, pools),
                // The failed engine's pools are gone; restart the arena.
                Err(e) => return (Err(format!("schedule error: {e}")), EnginePools::default()),
            }
        }
        SchedulerKind::Hbp => {
            match ftbar_hbp::schedule_with_pools(problem, &ftbar_hbp::HbpConfig::default(), pools) {
                Ok(ok) => ok,
                Err(e) => return (Err(format!("schedule error: {e}")), EnginePools::default()),
            }
        }
    };
    let result = JobResult {
        scheduler: job.scheduler,
        npf: problem.npf(),
        ops: problem.alg().op_count(),
        procs: problem.arch().proc_count(),
        makespan: schedule.makespan(),
        completion: schedule.completion(),
        replicas: schedule.replica_count(),
        comms: schedule.comm_count(),
        rtc_met: problem.rtc().map(|rtc| schedule.makespan() <= rtc),
        schedule: config.keep_schedules.then_some(schedule),
    };
    (Ok(result), pools)
}

/// Renders batch outcomes as deterministic JSON (stable field order, no
/// timing data — byte-identical across runs and worker counts).
pub fn render_json(outcomes: &[JobOutcome]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"jobs\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"index\": {}, \"name\": {}",
            o.index,
            json_string(&o.name)
        ));
        match &o.result {
            Ok(r) => {
                out.push_str(&format!(
                    ", \"status\": \"ok\", \"scheduler\": \"{}\", \"npf\": {}, \"ops\": {}, \
                     \"procs\": {}, \"makespan\": \"{}\", \"makespan_ticks\": {}, \
                     \"completion_ticks\": {}, \"replicas\": {}, \"comms\": {}, \"rtc_met\": {}",
                    r.scheduler.name(),
                    r.npf,
                    r.ops,
                    r.procs,
                    r.makespan,
                    r.makespan.ticks(),
                    r.completion.ticks(),
                    r.replicas,
                    r.comms,
                    match r.rtc_met {
                        Some(b) => b.to_string(),
                        None => "null".to_owned(),
                    },
                ));
                if let Some(schedule) = &r.schedule {
                    let json = serde_json::to_string(schedule).expect("schedules serialize");
                    out.push_str(&format!(", \"schedule\": {json}"));
                }
            }
            Err(msg) => {
                out.push_str(&format!(
                    ", \"status\": \"error\", \"error\": {}",
                    json_string(msg)
                ));
            }
        }
        out.push('}');
        if i + 1 < outcomes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// A quoted, escaped JSON string (serde_json owns the escaping rules).
fn json_string(s: &str) -> String {
    serde_json::to_string(s).expect("strings serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbar_model::paper_example;

    fn paper_jobs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                name: format!("job{i}"),
                input: JobInput::Problem(Box::new(paper_example())),
                scheduler: if i % 2 == 0 {
                    SchedulerKind::Ftbar
                } else {
                    SchedulerKind::Hbp
                },
                npf: None,
            })
            .collect()
    }

    #[test]
    fn batch_matches_direct_scheduling() {
        let jobs = paper_jobs(4);
        let out = run_batch(
            &jobs,
            &BatchConfig {
                jobs: 1,
                keep_schedules: true,
                ..BatchConfig::default()
            },
        );
        let p = paper_example();
        let ft = ftbar::schedule(&p).unwrap();
        let hbp = ftbar_hbp::schedule(&p).unwrap();
        for o in &out {
            let r = o.result.as_ref().unwrap();
            let expected = match r.scheduler {
                SchedulerKind::Ftbar => &ft,
                SchedulerKind::Hbp => &hbp,
            };
            assert_eq!(r.schedule.as_ref().unwrap(), expected);
            assert_eq!(r.rtc_met, Some(true));
        }
    }

    #[test]
    fn worker_count_never_changes_results() {
        let jobs = paper_jobs(7);
        let serial = run_batch(&jobs, &BatchConfig::default());
        for workers in [2, 4, 9] {
            let parallel = run_batch(
                &jobs,
                &BatchConfig {
                    jobs: workers,
                    ..BatchConfig::default()
                },
            );
            assert_eq!(render_json(&serial), render_json(&parallel));
        }
    }

    #[test]
    fn campaign_worker_count_never_changes_report() {
        let p = paper_example();
        let s = ftbar::schedule(&p).unwrap();
        let cfg = scenario::ScenarioConfig {
            links: true,
            jitter_samples: 2,
            ..Default::default()
        };
        let serial = scenario::render_json(&run_campaign(&p, &s, &cfg, 1));
        for workers in [2, 4, 9] {
            assert_eq!(
                scenario::render_json(&run_campaign(&p, &s, &cfg, workers)),
                serial
            );
        }
    }

    #[test]
    fn poisoned_jobs_fail_alone() {
        let mut jobs = paper_jobs(3);
        jobs.insert(
            1,
            JobSpec {
                name: "bad-spec".into(),
                input: JobInput::Spec("algorithm nope {".into()),
                scheduler: SchedulerKind::Ftbar,
                npf: None,
            },
        );
        jobs.insert(
            3,
            JobSpec {
                name: "bad-npf".into(),
                input: JobInput::Problem(Box::new(paper_example())),
                scheduler: SchedulerKind::Ftbar,
                npf: Some(99),
            },
        );
        let out = run_batch(&jobs, &BatchConfig::default());
        assert_eq!(out.len(), 5);
        assert!(out[1].result.is_err());
        assert!(out[3].result.is_err());
        for i in [0, 2, 4] {
            assert!(out[i].result.is_ok(), "job {i} must be isolated");
        }
    }

    #[test]
    fn json_is_parseable_and_escaped() {
        let jobs = vec![JobSpec {
            name: "quote\"and\\slash".into(),
            input: JobInput::Spec("bad".into()),
            scheduler: SchedulerKind::Hbp,
            npf: None,
        }];
        let out = run_batch(&jobs, &BatchConfig::default());
        let json = render_json(&out);
        assert!(json.contains("\\\"and\\\\slash"));
        assert!(json.contains("\"status\": \"error\""));
    }
}
