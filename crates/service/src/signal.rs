//! Minimal SIGTERM/SIGINT latch for the daemon's clean-shutdown path.
//!
//! The only unsafe code in the crate: registering a C signal handler that
//! sets an `AtomicBool`. Everything observable from Rust goes through
//! [`requested`], which the accept loop polls between accepts.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one relaxed atomic store, nothing else.
        REQUESTED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is installed once with a handler that only
        // performs an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (idempotent). No-op off Unix.
pub fn install() {
    imp::install();
}

/// Whether a termination signal has been received since [`install`].
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Sets the latch as if a signal had arrived (test/chaos support): lets
/// suites drive the SIGTERM drain path deterministically without
/// delivering a real signal to the whole test process.
pub fn request_termination() {
    REQUESTED.store(true, Ordering::Relaxed);
}

/// Clears the latch (test support).
pub fn reset() {
    REQUESTED.store(false, Ordering::Relaxed);
}
