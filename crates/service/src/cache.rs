//! Canonical request keys and the byte-budget LRU response cache.
//!
//! The daemon serves *millions of near-duplicate requests*: the same
//! problem text arrives re-ordered, re-indented, or re-labelled, and must
//! hit the same cache slot. Two layers make that cheap and exact:
//!
//! 1. **Canonical keys** ([`canonical_key`]) — a deterministic
//!    serialization of the *parsed* problem (ops, deps, architecture,
//!    timings, `rtc`, effective `npf`) plus every response-shaping request
//!    parameter (scheduler, strategy, `include_schedule`). All collections
//!    are sorted by name, so any two spec texts describing the same
//!    problem map to the same key regardless of declaration order. Keys
//!    are compared as full strings — a hash collision can never alias two
//!    distinct problems to one response.
//! 2. **A raw-text memo** — maps the exact raw request fields to the
//!    canonical key, so the steady-state hit path never re-parses the
//!    spec: one string hash, two map lookups, done.
//!
//! Both layers share one byte budget. Eviction is LRU by access stamp;
//! canonical entries and memo entries are evicted together, oldest first.
//! A memo entry whose canonical entry has been evicted resolves lazily to
//! a miss and is dropped.

use std::collections::HashMap;
use std::sync::Arc;

use ftbar_model::Problem;

use crate::SchedulerKind;

/// Fixed per-entry bookkeeping cost charged against the byte budget, on
/// top of the key/value bytes (map node, stamp, `Arc` header).
const ENTRY_OVERHEAD: usize = 64;

/// Cache observability counters, reported by the `status` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Responses served from cache.
    pub hits: u64,
    /// Lookups that fell through to the scheduler.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Responses inserted.
    pub insertions: u64,
}

#[derive(Debug)]
struct Entry {
    response: Arc<str>,
    stamp: u64,
    cost: usize,
}

#[derive(Debug)]
struct MemoEntry {
    canonical: String,
    stamp: u64,
    cost: usize,
}

/// A snapshot export: `(canonical, body)` cache entries and
/// `(raw, canonical)` memo records, each oldest access first.
pub type CacheExport = (Vec<(String, Arc<str>)>, Vec<(String, String)>);

/// Byte-budget LRU cache of rendered responses, keyed by canonical
/// problem keys with a raw-text memo in front.
#[derive(Debug)]
pub struct ResponseCache {
    budget: usize,
    used: usize,
    clock: u64,
    entries: HashMap<String, Entry>,
    memo: HashMap<String, MemoEntry>,
    stats: CacheStats,
}

impl ResponseCache {
    /// A cache holding at most `budget` bytes of keys + responses.
    /// A budget of `0` disables caching (every lookup misses).
    pub fn new(budget: usize) -> Self {
        ResponseCache {
            budget,
            used: 0,
            clock: 0,
            entries: HashMap::new(),
            memo: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up a response by the exact raw request key (no parsing).
    pub fn get_raw(&mut self, raw: &str) -> Option<Arc<str>> {
        self.clock += 1;
        let stamp = self.clock;
        let canonical = match self.memo.get_mut(raw) {
            Some(m) => {
                m.stamp = stamp;
                m.canonical.clone()
            }
            None => return self.miss(),
        };
        match self.entries.get_mut(&canonical) {
            Some(e) => {
                e.stamp = stamp;
                self.stats.hits += 1;
                Some(Arc::clone(&e.response))
            }
            None => {
                // The canonical entry was evicted under this memo entry;
                // drop the dangling pointer and fall through to a miss.
                if let Some(m) = self.memo.remove(raw) {
                    self.used = self.used.saturating_sub(m.cost);
                }
                self.miss()
            }
        }
    }

    /// Looks up a response by canonical key (after a raw-memo miss), and
    /// memoizes `raw` → `canonical` on a hit.
    pub fn get_canonical(&mut self, raw: &str, canonical: &str) -> Option<Arc<str>> {
        self.clock += 1;
        let stamp = self.clock;
        let response = match self.entries.get_mut(canonical) {
            Some(e) => {
                e.stamp = stamp;
                Arc::clone(&e.response)
            }
            None => return self.miss(),
        };
        self.stats.hits += 1;
        self.memoize(raw, canonical, stamp);
        Some(response)
    }

    /// Inserts a rendered response under both keys.
    ///
    /// An entry bigger than the whole budget is not cached at all; with a
    /// zero budget this is a no-op.
    pub fn insert(&mut self, raw: &str, canonical: &str, response: &Arc<str>) {
        if self.budget == 0 {
            return;
        }
        self.clock += 1;
        let stamp = self.clock;
        let cost = canonical.len() + response.len() + ENTRY_OVERHEAD;
        if cost <= self.budget && !self.entries.contains_key(canonical) {
            self.entries.insert(
                canonical.to_owned(),
                Entry {
                    response: Arc::clone(response),
                    stamp,
                    cost,
                },
            );
            self.used += cost;
            self.stats.insertions += 1;
        }
        self.memoize(raw, canonical, stamp);
        self.evict_to_budget();
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Number of cached responses (canonical entries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no responses.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of raw-memo entries.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Exports the cache for a snapshot: `(canonical, body)` entries and
    /// `(raw, canonical)` memos, each sorted oldest access first so
    /// re-inserting in order reproduces the LRU ordering.
    pub fn export(&self) -> CacheExport {
        let mut entries: Vec<(u64, String, Arc<str>)> = self
            .entries
            .iter()
            .map(|(k, e)| (e.stamp, k.clone(), Arc::clone(&e.response)))
            .collect();
        entries.sort_unstable_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut memos: Vec<(u64, String, String)> = self
            .memo
            .iter()
            .map(|(k, m)| (m.stamp, k.clone(), m.canonical.clone()))
            .collect();
        memos.sort_unstable_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        (
            entries.into_iter().map(|(_, k, r)| (k, r)).collect(),
            memos.into_iter().map(|(_, k, c)| (k, c)).collect(),
        )
    }

    /// Re-inserts a snapshotted response under its canonical key with a
    /// fresh access stamp (restore path; no raw memo).
    pub fn restore_entry(&mut self, canonical: &str, response: &Arc<str>) {
        if self.budget == 0 {
            return;
        }
        self.clock += 1;
        let stamp = self.clock;
        let cost = canonical.len() + response.len() + ENTRY_OVERHEAD;
        if cost <= self.budget && !self.entries.contains_key(canonical) {
            self.entries.insert(
                canonical.to_owned(),
                Entry {
                    response: Arc::clone(response),
                    stamp,
                    cost,
                },
            );
            self.used += cost;
        }
        self.evict_to_budget();
    }

    /// Re-inserts a snapshotted raw → canonical memo entry (restore
    /// path). Memos whose canonical entry did not survive still resolve
    /// lazily to a miss, exactly like a post-eviction dangling memo.
    pub fn restore_memo(&mut self, raw: &str, canonical: &str) {
        if self.budget == 0 {
            return;
        }
        self.clock += 1;
        let stamp = self.clock;
        self.memoize(raw, canonical, stamp);
    }

    fn miss(&mut self) -> Option<Arc<str>> {
        self.stats.misses += 1;
        None
    }

    fn memoize(&mut self, raw: &str, canonical: &str, stamp: u64) {
        let cost = raw.len() + canonical.len() + ENTRY_OVERHEAD;
        if cost > self.budget || self.memo.contains_key(raw) {
            return;
        }
        self.memo.insert(
            raw.to_owned(),
            MemoEntry {
                canonical: canonical.to_owned(),
                stamp,
                cost,
            },
        );
        self.used += cost;
        self.evict_to_budget();
    }

    /// Evicts oldest-stamped entries (responses and memo entries pooled
    /// together) until `used <= budget`.
    fn evict_to_budget(&mut self) {
        while self.used > self.budget {
            let oldest_entry = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, e)| (k.clone(), e.stamp));
            let oldest_memo = self
                .memo
                .iter()
                .min_by_key(|(_, m)| m.stamp)
                .map(|(k, m)| (k.clone(), m.stamp));
            match (oldest_entry, oldest_memo) {
                (Some((ek, es)), Some((mk, ms))) => {
                    if es <= ms {
                        self.remove_entry(&ek);
                    } else {
                        self.remove_memo(&mk);
                    }
                }
                (Some((ek, _)), None) => self.remove_entry(&ek),
                (None, Some((mk, _))) => self.remove_memo(&mk),
                (None, None) => break,
            }
        }
    }

    fn remove_entry(&mut self, key: &str) {
        if let Some(e) = self.entries.remove(key) {
            self.used = self.used.saturating_sub(e.cost);
            self.stats.evictions += 1;
        }
    }

    fn remove_memo(&mut self, key: &str) {
        if let Some(m) = self.memo.remove(key) {
            self.used = self.used.saturating_sub(m.cost);
            self.stats.evictions += 1;
        }
    }
}

/// The canonical key of a scheduling request: a deterministic, sorted
/// serialization of everything the response depends on.
///
/// Two requests get the same key **iff** they describe the same problem
/// (up to declaration order) and ask for it the same way — so serving a
/// cached response under this key is byte-exact, and distinct `npf`,
/// strategy, scheduler, or `include_schedule` values can never collide.
pub fn canonical_key(
    problem: &Problem,
    scheduler: SchedulerKind,
    strategy: &str,
    include_schedule: bool,
) -> String {
    let alg = problem.alg();
    let arch = problem.arch();
    let mut key = String::with_capacity(256);
    key.push_str("v1|scheduler=");
    key.push_str(scheduler.name());
    key.push_str("|strategy=");
    key.push_str(strategy);
    key.push_str("|npf=");
    key.push_str(&problem.npf().to_string());
    key.push_str("|schedule=");
    key.push_str(if include_schedule { "1" } else { "0" });
    key.push_str("|rtc=");
    match problem.rtc() {
        Some(t) => key.push_str(&t.ticks().to_string()),
        None => key.push('-'),
    }

    key.push_str("|alg=");
    key.push_str(alg.name());
    key.push_str("|ops:");
    let mut ops: Vec<_> = alg
        .ops()
        .map(|id| format!("{}/{}", alg.op(id).name(), alg.op(id).kind().keyword()))
        .collect();
    ops.sort_unstable();
    key.push_str(&ops.join(","));

    key.push_str("|deps:");
    let mut deps: Vec<_> = alg
        .deps()
        .map(|id| {
            let (s, d) = alg.dep_endpoints(id);
            format!(
                "{}>{}#{:?}",
                alg.op(s).name(),
                alg.op(d).name(),
                alg.dep(id).size()
            )
        })
        .collect();
    deps.sort_unstable();
    key.push_str(&deps.join(","));

    key.push_str("|arch=");
    key.push_str(arch.name());
    key.push_str("|procs:");
    let mut procs: Vec<_> = arch
        .procs()
        .map(|id| arch.proc(id).name().to_owned())
        .collect();
    procs.sort_unstable();
    key.push_str(&procs.join(","));

    key.push_str("|links:");
    let mut links: Vec<_> = arch
        .links()
        .map(|id| {
            let l = arch.link(id);
            let mut eps: Vec<_> = l.endpoints().iter().map(|p| arch.proc(*p).name()).collect();
            eps.sort_unstable();
            format!("{}={}", l.name(), eps.join("+"))
        })
        .collect();
    links.sort_unstable();
    key.push_str(&links.join(","));

    key.push_str("|exec:");
    let mut exec: Vec<_> = alg
        .ops()
        .flat_map(|op| {
            arch.procs().map(move |proc| (op, proc)).map(|(op, proc)| {
                let cell = match problem.exec().get(op, proc) {
                    Some(t) => t.ticks().to_string(),
                    None => "inf".to_owned(),
                };
                format!("{}@{}={}", alg.op(op).name(), arch.proc(proc).name(), cell)
            })
        })
        .collect();
    exec.sort_unstable();
    key.push_str(&exec.join(","));

    key.push_str("|comm:");
    let mut comm: Vec<_> = alg
        .deps()
        .flat_map(|dep| {
            let (s, d) = alg.dep_endpoints(dep);
            arch.links()
                .filter_map(move |link| problem.comm().get(dep, link).map(|t| (s, d, link, t)))
        })
        .map(|(s, d, link, t)| {
            format!(
                "{}>{}@{}={}",
                alg.op(s).name(),
                alg.op(d).name(),
                arch.link(link).name(),
                t.ticks()
            )
        })
        .collect();
    comm.sort_unstable();
    key.push_str(&comm.join(","));
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbar_model::paper_example;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn raw_memo_serves_without_reparsing() {
        let mut c = ResponseCache::new(64 * 1024);
        let p = paper_example();
        let canon = canonical_key(&p, SchedulerKind::Ftbar, "adaptive", false);
        let resp = arc("{\"status\":\"ok\"}");
        assert!(c.get_raw("raw-a").is_none());
        c.insert("raw-a", &canon, &resp);
        assert_eq!(c.get_raw("raw-a").as_deref(), Some(&*resp));
        // A different raw text with the same canonical key also hits.
        assert!(c.get_raw("raw-b").is_none());
        assert_eq!(c.get_canonical("raw-b", &canon).as_deref(), Some(&*resp));
        // ... and is memoized for next time.
        assert_eq!(c.get_raw("raw-b").as_deref(), Some(&*resp));
        let s = c.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut c = ResponseCache::new(0);
        let resp = arc("resp");
        c.insert("raw", "canon", &resp);
        assert!(c.is_empty());
        assert!(c.get_raw("raw").is_none());
        assert!(c.get_canonical("raw", "canon").is_none());
    }

    #[test]
    fn eviction_respects_byte_budget_lru() {
        let mut c = ResponseCache::new(600);
        for i in 0..8 {
            let resp = arc(&format!("response-{i}-{}", "x".repeat(40)));
            c.insert(&format!("raw-{i}"), &format!("canon-{i}"), &resp);
        }
        assert!(
            c.used_bytes() <= 600,
            "budget respected: {}",
            c.used_bytes()
        );
        assert!(c.stats().evictions > 0);
        // The most recently inserted entry survives.
        assert!(c.get_raw("raw-7").is_some() || c.get_canonical("raw-7", "canon-7").is_some());
    }

    #[test]
    fn export_restore_round_trips_with_lru_order() {
        let mut c = ResponseCache::new(64 * 1024);
        for i in 0..4 {
            let resp = arc(&format!("response-{i}"));
            c.insert(&format!("raw-{i}"), &format!("canon-{i}"), &resp);
        }
        // Touch an old entry so export order differs from insert order.
        assert!(c.get_raw("raw-0").is_some());
        let (entries, memos) = c.export();
        assert_eq!(entries.len(), 4);
        assert_eq!(memos.len(), 4);
        assert_eq!(entries.last().unwrap().0, "canon-0", "freshest last");

        let mut restored = ResponseCache::new(64 * 1024);
        for (canonical, body) in &entries {
            restored.restore_entry(canonical, body);
        }
        for (raw, canonical) in &memos {
            restored.restore_memo(raw, canonical);
        }
        assert_eq!(restored.len(), 4);
        assert_eq!(restored.memo_len(), 4);
        for i in 0..4 {
            assert_eq!(
                restored.get_raw(&format!("raw-{i}")).as_deref(),
                Some(format!("response-{i}").as_str())
            );
        }
        // LRU order carried over: shrink the budget of a fresh restore
        // and the oldest-accessed entries fall out first.
        let mut tight = ResponseCache::new(300);
        for (canonical, body) in &entries {
            tight.restore_entry(canonical, body);
        }
        assert!(tight.len() < 4);
        assert!(
            tight.get_canonical("r", "canon-0").is_some(),
            "most recently used entry survives a tight restore"
        );
    }

    #[test]
    fn distinct_parameters_never_collide() {
        let p = paper_example();
        let base = canonical_key(&p, SchedulerKind::Ftbar, "adaptive", false);
        assert_ne!(
            base,
            canonical_key(&p, SchedulerKind::Hbp, "adaptive", false)
        );
        assert_ne!(
            base,
            canonical_key(&p, SchedulerKind::Ftbar, "clustered", false)
        );
        assert_ne!(
            base,
            canonical_key(&p, SchedulerKind::Ftbar, "adaptive", true)
        );
        let p2 = p.with_npf(0).unwrap();
        assert_ne!(
            base,
            canonical_key(&p2, SchedulerKind::Ftbar, "adaptive", false)
        );
    }
}
