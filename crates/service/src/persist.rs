//! Crash-safe snapshot/restore of durable daemon state (warm restarts).
//!
//! A snapshot is a single file capturing everything the daemon memoizes
//! across requests: the response cache (canonical-key entries and the
//! raw-text memo layer in front of them), the poisoned-spec set, and the
//! *seeds* of the reschedule artifact store. The format is versioned,
//! length-prefixed, and checksummed per record:
//!
//! ```text
//! [magic "FTBARSNP"][version: u32 LE]
//! repeat: [kind: u8][len: u32 LE][payload: len bytes][crc32: u32 LE]
//! last:   [kind 0xED][len 4][record count: u32 LE][crc32]
//! ```
//!
//! The CRC of each record covers its kind byte, length prefix, and
//! payload, so a bit flip anywhere in a record is detected. The trailing
//! `END` record carries the count of preceding records, so a snapshot
//! that merely *stops early* (torn write, truncation, kill mid-write) is
//! distinguishable from one that ends where it meant to.
//!
//! **Writes are atomic**: the snapshot is written to a sibling temp file,
//! flushed with `fsync`, renamed over the target, and the parent
//! directory synced — a reader never observes a half-written snapshot at
//! the target path, no matter when the writer dies.
//!
//! **Restore is paranoid**: a bad magic or unknown version refuses the
//! whole file ([`RestoreStatus::RefusedCorrupt`]); a record that is
//! truncated or fails its CRC silently drops the tail from that point
//! ([`RestoreStatus::PartialTailDrop`]), keeping every record before it;
//! only a snapshot whose `END` trailer is reached and count-consistent
//! restores cleanly ([`RestoreStatus::Restored`]). Corruption can reduce
//! a restore to a cold start but can never produce wrong bytes: cache
//! bodies are re-inserted verbatim, and artifact seeds are *replayed*
//! through the deterministic scheduler rather than deserializing engine
//! internals, so a restored daemon's answers are byte-identical to both
//! its pre-restart answers and a cold daemon's.
//!
//! Artifacts are persisted as [`ArtifactSeed`]s — the request lineage
//! (base schedule request fields plus the ordered edit chain) instead of
//! the retained engine state itself. Rehydration re-runs
//! `schedule_retained` on the reconstructed problem; PR 9's property
//! tests prove repair ≡ from-scratch byte-identity, which makes replay a
//! sound (and compact) serialization of the artifact store.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ftbar_core::edit::ProblemEdit;
use serde::Value;

use crate::proto::{parse_edit, render_edit, strategy_from_name};
use crate::SchedulerKind;

/// File magic: first 8 bytes of every snapshot.
pub const MAGIC: &[u8; 8] = b"FTBARSNP";

/// Current snapshot format version. Readers refuse anything else.
pub const VERSION: u32 = 1;

/// Record kind: a response-cache entry (canonical key + rendered body).
const KIND_CACHE: u8 = 1;
/// Record kind: a raw-text memo entry (raw key → canonical key).
const KIND_MEMO: u8 = 2;
/// Record kind: a poisoned raw request key.
const KIND_POISONED: u8 = 3;
/// Record kind: a reschedule artifact seed (JSON).
const KIND_SEED: u8 = 4;
/// Record kind: the END trailer (record count).
const KIND_END: u8 = 0xED;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the per-record checksum of the snapshot
/// format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Artifact seeds
// ---------------------------------------------------------------------------

/// The replayable lineage of a retained [`ScheduleArtifacts`] entry: the
/// base request that first produced it plus the ordered chain of edits
/// that led to the current problem. Restoring re-parses the spec,
/// re-applies the edits, and re-runs the retained scheduler — the
/// deterministic engines make the replayed artifacts byte-equivalent to
/// the originals.
///
/// [`ScheduleArtifacts`]: ftbar_core::reschedule::ScheduleArtifacts
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactSeed {
    /// Scheduler of the base request (only FTBAR retains artifacts
    /// today, but the seed records it for forward compatibility).
    pub scheduler: SchedulerKind,
    /// Wire name of the requested sweep strategy.
    pub strategy: String,
    /// `npf` override of the base request.
    pub npf: Option<u32>,
    /// Rendering option of the base request (part of the canonical key).
    pub include_schedule: bool,
    /// Base problem spec text, verbatim.
    pub spec: String,
    /// Ordered edit chain applied on top of the base problem.
    pub edits: Vec<ProblemEdit>,
}

impl ArtifactSeed {
    /// Renders the seed as one JSON object (the `KIND_SEED` payload).
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"scheduler\": \"{}\", \"strategy\": {}, \"npf\": {}, \
             \"include_schedule\": {}, \"spec\": {}, \"edits\": [",
            self.scheduler.name(),
            json_string(&self.strategy),
            match self.npf {
                Some(n) => n.to_string(),
                None => "null".to_owned(),
            },
            self.include_schedule,
            json_string(&self.spec),
        ));
        let edits: Vec<String> = self.edits.iter().map(render_edit).collect();
        out.push_str(&edits.join(", "));
        out.push_str("]}");
        out
    }

    /// Parses a seed rendered by [`ArtifactSeed::render`]. `Err` carries
    /// a description of the first malformed field (the restore path drops
    /// such seeds rather than failing the whole snapshot).
    pub fn parse(text: &str) -> Result<ArtifactSeed, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let scheduler = match v.get("scheduler").and_then(Value::as_str) {
            Some("ftbar") => SchedulerKind::Ftbar,
            Some("hbp") => SchedulerKind::Hbp,
            _ => return Err("unknown or missing `scheduler`".into()),
        };
        let strategy = v
            .get("strategy")
            .and_then(Value::as_str)
            .ok_or("`strategy` (string) is required")?
            .to_owned();
        if strategy_from_name(&strategy).is_none() {
            return Err(format!("unknown strategy `{strategy}`"));
        }
        let npf = match v.get("npf") {
            None | Some(Value::Null) => None,
            Some(Value::Number(serde::Number::UInt(u))) => {
                Some(u32::try_from(*u).map_err(|_| "`npf` out of range".to_owned())?)
            }
            Some(_) => return Err("`npf` must be a non-negative integer or null".into()),
        };
        let include_schedule = match v.get("include_schedule") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("`include_schedule` (bool) is required".into()),
        };
        let spec = v
            .get("spec")
            .and_then(Value::as_str)
            .ok_or("`spec` (string) is required")?
            .to_owned();
        let edits = match v.get("edits") {
            Some(Value::Array(items)) => items
                .iter()
                .map(parse_edit)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("`edits` (array) is required".into()),
        };
        Ok(ArtifactSeed {
            scheduler,
            strategy,
            npf,
            include_schedule,
            spec,
            edits,
        })
    }
}

fn json_string(s: &str) -> String {
    serde_json::to_string(s).expect("strings serialize")
}

// ---------------------------------------------------------------------------
// Snapshot data model
// ---------------------------------------------------------------------------

/// Everything a snapshot carries, in restore order.
#[derive(Debug, Default, Clone)]
pub struct SnapshotData {
    /// Response-cache entries `(canonical key, rendered body)`, oldest
    /// access first so re-insertion reproduces the LRU order.
    pub cache_entries: Vec<(String, Arc<str>)>,
    /// Raw-text memo entries `(raw key, canonical key)`, oldest first.
    pub memos: Vec<(String, String)>,
    /// Poisoned raw request keys (sorted at collection time so snapshot
    /// bytes are deterministic for a given state).
    pub poisoned: Vec<String>,
    /// Artifact seeds, oldest insertion first. The canonical key is not
    /// stored: restore re-derives it from the replayed problem, so a
    /// seed can never be filed under a stale key.
    pub seeds: Vec<ArtifactSeed>,
}

impl SnapshotData {
    /// Total record count the END trailer commits to.
    fn record_count(&self) -> usize {
        self.cache_entries.len() + self.memos.len() + self.poisoned.len() + self.seeds.len()
    }
}

/// Per-section entry counts of a snapshot, for `status` reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Response-cache entries.
    pub cache_entries: usize,
    /// Raw-memo entries.
    pub memos: usize,
    /// Poisoned keys.
    pub poisoned: usize,
    /// Artifact seeds.
    pub seeds: usize,
    /// Encoded snapshot size in bytes.
    pub bytes: u64,
}

impl SnapshotStats {
    /// Stats for `data` encoded to `bytes` bytes.
    pub fn of(data: &SnapshotData, bytes: u64) -> Self {
        SnapshotStats {
            cache_entries: data.cache_entries.len(),
            memos: data.memos.len(),
            poisoned: data.poisoned.len(),
            seeds: data.seeds.len(),
            bytes,
        }
    }
}

/// How a restore attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreStatus {
    /// The END trailer was reached and count-consistent: the full
    /// snapshot is restored.
    Restored,
    /// A truncated or CRC-failing record stopped the read mid-stream;
    /// every record before it is restored, the tail is dropped.
    PartialTailDrop,
    /// The header is unreadable (bad magic, unknown version) or no
    /// record survived validation: nothing is restored, the daemon
    /// starts cold.
    RefusedCorrupt,
}

impl RestoreStatus {
    /// Stable wire name, reported by `status`.
    pub fn name(self) -> &'static str {
        match self {
            RestoreStatus::Restored => "restored",
            RestoreStatus::PartialTailDrop => "partial-tail-drop",
            RestoreStatus::RefusedCorrupt => "refused-corrupt",
        }
    }
}

/// The outcome of decoding a snapshot: whatever survived validation,
/// plus how the read ended.
#[derive(Debug)]
pub struct Restore {
    /// Surviving records.
    pub data: SnapshotData,
    /// How the read ended.
    pub status: RestoreStatus,
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

fn push_record(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let start = out.len();
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

fn prefixed(a: &str, b: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + a.len() + b.len());
    payload.extend_from_slice(&(a.len() as u32).to_le_bytes());
    payload.extend_from_slice(a.as_bytes());
    payload.extend_from_slice(b.as_bytes());
    payload
}

/// Encodes `data` into the versioned, checksummed snapshot byte stream.
pub fn encode_snapshot(data: &SnapshotData) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    for (canonical, body) in &data.cache_entries {
        push_record(&mut out, KIND_CACHE, &prefixed(canonical, body));
    }
    for (raw, canonical) in &data.memos {
        push_record(&mut out, KIND_MEMO, &prefixed(raw, canonical));
    }
    for raw in &data.poisoned {
        push_record(&mut out, KIND_POISONED, raw.as_bytes());
    }
    for seed in &data.seeds {
        push_record(&mut out, KIND_SEED, seed.render().as_bytes());
    }
    push_record(
        &mut out,
        KIND_END,
        &(data.record_count() as u32).to_le_bytes(),
    );
    out
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

fn split_prefixed(payload: &[u8]) -> Option<(&[u8], &[u8])> {
    let len = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    let rest = &payload[4..];
    if len > rest.len() {
        return None;
    }
    Some((&rest[..len], &rest[len..]))
}

/// Decodes a snapshot byte stream, keeping everything that validates.
/// Never fails: corruption degrades the result toward a cold start (see
/// [`RestoreStatus`]) but cannot produce invalid data.
pub fn decode_snapshot(bytes: &[u8]) -> Restore {
    let refused = || Restore {
        data: SnapshotData::default(),
        status: RestoreStatus::RefusedCorrupt,
    };
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return refused();
    }
    let version = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
    if version != VERSION {
        return refused();
    }

    let mut data = SnapshotData::default();
    let mut decoded = 0usize;
    let mut pos = MAGIC.len() + 4;
    let mut status = RestoreStatus::PartialTailDrop;
    // Record header: kind + len. Anything short of a full, CRC-valid
    // record from here on is a torn tail.
    while let Some(header) = bytes.get(pos..pos + 5) {
        let kind = header[0];
        let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
        let Some(payload) = bytes.get(pos + 5..pos + 5 + len) else {
            break;
        };
        let Some(crc_bytes) = bytes.get(pos + 5 + len..pos + 5 + len + 4) else {
            break;
        };
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(&bytes[pos..pos + 5 + len]) != stored {
            break;
        }
        pos += 5 + len + 4;
        match kind {
            KIND_CACHE => {
                let Some((canonical, body)) = split_prefixed(payload) else {
                    break;
                };
                let (Ok(canonical), Ok(body)) =
                    (std::str::from_utf8(canonical), std::str::from_utf8(body))
                else {
                    break;
                };
                data.cache_entries
                    .push((canonical.to_owned(), Arc::from(body)));
            }
            KIND_MEMO => {
                let Some((raw, canonical)) = split_prefixed(payload) else {
                    break;
                };
                let (Ok(raw), Ok(canonical)) =
                    (std::str::from_utf8(raw), std::str::from_utf8(canonical))
                else {
                    break;
                };
                data.memos.push((raw.to_owned(), canonical.to_owned()));
            }
            KIND_POISONED => {
                let Ok(raw) = std::str::from_utf8(payload) else {
                    break;
                };
                data.poisoned.push(raw.to_owned());
            }
            KIND_SEED => {
                // A seed that no longer parses (e.g. written with an edit
                // kind this build dropped) is skipped, not fatal: the
                // artifact store is a cache, a missing entry only costs a
                // fallback re-run.
                if let Ok(text) = std::str::from_utf8(payload) {
                    if let Ok(seed) = ArtifactSeed::parse(text) {
                        data.seeds.push(seed);
                    }
                }
            }
            KIND_END => {
                let count = payload
                    .get(..4)
                    .and_then(|b| b.try_into().ok())
                    .map(u32::from_le_bytes);
                if count == Some(decoded as u32) {
                    status = RestoreStatus::Restored;
                }
                break;
            }
            // Unknown kinds with a valid CRC are skipped: a same-version
            // writer that learned a new record type stays readable.
            _ => {}
        }
        decoded += 1;
    }
    if status == RestoreStatus::PartialTailDrop && decoded == 0 {
        return refused();
    }
    Restore { data, status }
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// The deterministic sibling temp path snapshots are staged at before the
/// atomic rename. Public so the chaos harness can litter it and prove a
/// stale temp file never corrupts the next snapshot.
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically writes a snapshot of `data` at `path`: encode, write to a
/// sibling temp file, `fsync`, rename over the target, then best-effort
/// sync the parent directory. A crash at any point leaves either the old
/// snapshot or the new one at `path`, never a torn hybrid.
///
/// # Errors
///
/// Any I/O failure along the way; the temp file is removed on failure
/// when possible.
pub fn write_snapshot(path: &Path, data: &SnapshotData) -> io::Result<SnapshotStats> {
    let bytes = encode_snapshot(data);
    let tmp = temp_path(path);
    let write = (|| -> io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Make the rename itself durable. Failure here is not fatal to
    // correctness (the data file is synced), so best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(SnapshotStats::of(data, bytes.len() as u64))
}

/// Reads and decodes the snapshot at `path`. `Ok(None)` when the file
/// does not exist (first boot); decoding problems are reported through
/// [`RestoreStatus`], never as errors.
///
/// # Errors
///
/// Only real I/O failures reading an existing file.
pub fn read_snapshot(path: &Path) -> io::Result<Option<Restore>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(Some(decode_snapshot(&bytes)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotData {
        SnapshotData {
            cache_entries: vec![
                (
                    "canon-a".into(),
                    Arc::from("{\"status\": \"ok\", \"n\": 1}"),
                ),
                (
                    "canon-b".into(),
                    Arc::from("{\"status\": \"ok\", \"n\": 2}"),
                ),
            ],
            memos: vec![
                ("raw-a".into(), "canon-a".into()),
                ("raw-b".into(), "canon-b".into()),
            ],
            poisoned: vec!["bad-raw-1".into(), "bad-raw-2".into()],
            seeds: vec![ArtifactSeed {
                scheduler: SchedulerKind::Ftbar,
                strategy: "adaptive".into(),
                npf: Some(1),
                include_schedule: false,
                spec: "algorithm a { }".into(),
                edits: vec![ProblemEdit::SetNpf { npf: 2 }],
            }],
        }
    }

    fn assert_same(a: &SnapshotData, b: &SnapshotData) {
        assert_eq!(a.cache_entries, b.cache_entries);
        assert_eq!(a.memos, b.memos);
        assert_eq!(a.poisoned, b.poisoned);
        assert_eq!(a.seeds, b.seeds);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_round_trips() {
        let data = sample();
        let bytes = encode_snapshot(&data);
        let restore = decode_snapshot(&bytes);
        assert_eq!(restore.status, RestoreStatus::Restored);
        assert_same(&restore.data, &data);
    }

    #[test]
    fn empty_snapshot_restores_empty() {
        let restore = decode_snapshot(&encode_snapshot(&SnapshotData::default()));
        assert_eq!(restore.status, RestoreStatus::Restored);
        assert_eq!(restore.data.record_count(), 0);
    }

    #[test]
    fn seed_render_parse_round_trips() {
        for seed in [
            sample().seeds[0].clone(),
            ArtifactSeed {
                scheduler: SchedulerKind::Hbp,
                strategy: "clustered".into(),
                npf: None,
                include_schedule: true,
                spec: "spec with \"quotes\"\nand newlines".into(),
                edits: vec![],
            },
        ] {
            assert_eq!(ArtifactSeed::parse(&seed.render()).as_ref(), Ok(&seed));
        }
    }

    #[test]
    fn truncation_drops_tail_keeps_prefix() {
        let data = sample();
        let bytes = encode_snapshot(&data);
        // Cut into the last data record (the END trailer is 13 bytes).
        let cut = bytes.len() - 20;
        let restore = decode_snapshot(&bytes[..cut]);
        assert_eq!(restore.status, RestoreStatus::PartialTailDrop);
        assert!(restore.data.record_count() < data.record_count());
        assert!(restore.data.record_count() > 0);
        // Whatever survived is a prefix of the original, values intact.
        for (i, e) in restore.data.cache_entries.iter().enumerate() {
            assert_eq!(e, &data.cache_entries[i]);
        }
    }

    #[test]
    fn every_truncation_point_is_safe() {
        let data = sample();
        let bytes = encode_snapshot(&data);
        for cut in 0..bytes.len() {
            let restore = decode_snapshot(&bytes[..cut]);
            assert_ne!(
                restore.status,
                RestoreStatus::Restored,
                "truncated at {cut} must not claim a full restore"
            );
            // Survivors are always an exact prefix with intact values.
            for (i, e) in restore.data.cache_entries.iter().enumerate() {
                assert_eq!(e, &data.cache_entries[i], "cut at {cut}");
            }
            for (i, m) in restore.data.memos.iter().enumerate() {
                assert_eq!(m, &data.memos[i], "cut at {cut}");
            }
        }
    }

    #[test]
    fn every_single_bitflip_is_detected_or_harmless() {
        let data = sample();
        let bytes = encode_snapshot(&data);
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x40;
            let restore = decode_snapshot(&corrupt);
            // Whatever is restored must be an exact prefix of the truth —
            // corruption can shrink the restore, never alter a value.
            for (i, e) in restore.data.cache_entries.iter().enumerate() {
                assert_eq!(e, &data.cache_entries[i], "flip at byte {byte}");
            }
            for (i, m) in restore.data.memos.iter().enumerate() {
                assert_eq!(m, &data.memos[i], "flip at byte {byte}");
            }
            for (i, p) in restore.data.poisoned.iter().enumerate() {
                assert_eq!(p, &data.poisoned[i], "flip at byte {byte}");
            }
        }
    }

    #[test]
    fn bad_magic_and_version_refuse() {
        let data = sample();
        let mut bytes = encode_snapshot(&data);
        bytes[0] ^= 0xFF;
        assert_eq!(
            decode_snapshot(&bytes).status,
            RestoreStatus::RefusedCorrupt
        );

        let mut bytes = encode_snapshot(&data);
        bytes[8] = 0xFE; // version skew
        let restore = decode_snapshot(&bytes);
        assert_eq!(restore.status, RestoreStatus::RefusedCorrupt);
        assert_eq!(restore.data.record_count(), 0);

        assert_eq!(decode_snapshot(b"").status, RestoreStatus::RefusedCorrupt);
        assert_eq!(
            decode_snapshot(b"garbage that is not a snapshot").status,
            RestoreStatus::RefusedCorrupt
        );
    }

    #[test]
    fn end_count_mismatch_downgrades() {
        let mut data = sample();
        let bytes = encode_snapshot(&data);
        // Re-encode with one record dropped, then splice the old (larger)
        // END trailer on: count mismatch must not claim `restored`.
        data.poisoned.pop();
        let mut shorter = encode_snapshot(&data);
        let end_len = 1 + 4 + 4 + 4;
        shorter.truncate(shorter.len() - end_len);
        shorter.extend_from_slice(&bytes[bytes.len() - end_len..]);
        let restore = decode_snapshot(&shorter);
        assert_eq!(restore.status, RestoreStatus::PartialTailDrop);
    }

    #[test]
    fn unknown_record_kind_is_skipped() {
        let data = sample();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        push_record(&mut bytes, 0x7F, b"future record type");
        push_record(
            &mut bytes,
            KIND_CACHE,
            &prefixed(&data.cache_entries[0].0, &data.cache_entries[0].1),
        );
        push_record(&mut bytes, KIND_END, &2u32.to_le_bytes());
        let restore = decode_snapshot(&bytes);
        assert_eq!(restore.status, RestoreStatus::Restored);
        assert_eq!(restore.data.cache_entries.len(), 1);
    }

    #[test]
    fn malformed_seed_is_skipped_not_fatal() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        push_record(&mut bytes, KIND_SEED, b"{\"scheduler\": \"quantum\"}");
        push_record(&mut bytes, KIND_POISONED, b"still-here");
        push_record(&mut bytes, KIND_END, &2u32.to_le_bytes());
        let restore = decode_snapshot(&bytes);
        assert_eq!(restore.status, RestoreStatus::Restored);
        assert!(restore.data.seeds.is_empty());
        assert_eq!(restore.data.poisoned, vec!["still-here".to_owned()]);
    }

    #[test]
    fn write_read_round_trips_and_is_atomic() {
        let dir = std::env::temp_dir().join(format!("ftbar-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let data = sample();

        // A littered stale temp file must not break the write.
        std::fs::write(temp_path(&path), b"stale garbage").unwrap();
        let stats = write_snapshot(&path, &data).unwrap();
        assert_eq!(stats.cache_entries, 2);
        assert_eq!(stats.seeds, 1);
        assert!(stats.bytes > 0);
        assert!(!temp_path(&path).exists(), "temp file renamed away");

        let restore = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(restore.status, RestoreStatus::Restored);
        assert_same(&restore.data, &data);

        // Missing file is a clean first-boot signal, not an error.
        assert!(read_snapshot(&dir.join("absent.snap")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
