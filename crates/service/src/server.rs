//! The long-lived scheduling daemon: listener, admission control, worker
//! pool, response cache, panic isolation, degradation, clean shutdown.
//!
//! Layering (outer to inner):
//!
//! * **Listener shell** ([`serve`]) — non-blocking accept loop (Unix
//!   socket or TCP) polling the shutdown latch, one thread per
//!   connection, socket read/write timeouts so stalled clients cannot
//!   pin resources, per-frame byte cap.
//! * **Frame core** ([`ServerState::handle_frame`]) — parses one request
//!   line and produces exactly one response line. Pure enough to drive
//!   directly from tests and the chaos harness without sockets.
//! * **Worker pool** — bounded `Mutex<VecDeque>` + `Condvar` job queue
//!   (shed-oldest or reject-new on overflow), workers recycling
//!   [`EnginePools`] arenas, `catch_unwind` around every job so a
//!   panicking spec answers `internal_panic` — and is remembered in the
//!   poisoned set, refusing identical requests without re-running them.
//! * **Cache** — [`ResponseCache`]: canonical-key response memoization
//!   with a raw-text fast path; hits skip spec parsing entirely.
//!
//! Degradation: when a request reaches a worker with little deadline
//! headroom or behind a deep queue, and the problem is large, the exact
//! sweep falls back to [`SweepStrategy::Clustered`] and the response is
//! flagged `"degraded": true`. Degraded responses are never cached, so
//! cached bytes always equal the un-pressured direct response.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ftbar_core::edit::ProblemEdit;
use ftbar_core::engine::EnginePools;
use ftbar_core::ftbar::SweepStrategy;
use ftbar_core::reschedule::{reschedule, schedule_retained, RescheduleError, ScheduleArtifacts};
use ftbar_core::{ftbar, FtbarConfig};
use ftbar_model::{spec, Problem};

use crate::cache::{canonical_key, CacheStats, ResponseCache};
use crate::persist::{self, ArtifactSeed, RestoreStatus, SnapshotData, SnapshotStats};
use crate::proto::{
    parse_request, render_error, render_ok, strategy_from_name, strategy_name, with_id, ErrorCode,
    Request, ScheduleRequest,
};
use crate::{panic_message, signal, JobResult, SchedulerKind};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listener {
    /// A Unix-domain socket at this path (default transport).
    Unix(PathBuf),
    /// A TCP socket, `HOST:PORT`.
    Tcp(String),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Scheduling worker threads.
    pub workers: usize,
    /// Bounded work-queue depth; beyond it, backpressure kicks in.
    pub queue_depth: usize,
    /// Backpressure policy on a full queue: `true` sheds the oldest
    /// queued request (answering it `overloaded`), `false` rejects the
    /// new one.
    pub shed_oldest: bool,
    /// Response-cache byte budget; `0` disables caching.
    pub cache_bytes: usize,
    /// Default per-request deadline (overridable per request).
    pub default_timeout_ms: u64,
    /// Maximum request-frame size in bytes; longer frames answer
    /// `too_large`.
    pub max_frame_bytes: usize,
    /// Socket read/write timeout, so stalled clients release their
    /// connection thread.
    pub io_timeout_ms: u64,
    /// Minimum operation count before degradation is considered (the
    /// clustered fallback only pays off on large problems).
    pub degrade_min_ops: usize,
    /// Deadline headroom below which a worker degrades an eligible job.
    pub degrade_headroom_ms: u64,
    /// Queue depth at enqueue time at or above which an eligible job
    /// degrades.
    pub degrade_queue_depth: usize,
    /// Retained-schedule slots for incremental rescheduling: the most
    /// recent N distinct FTBAR answers keep their engine artifacts so a
    /// `reschedule` request repairs instead of re-running. `0` disables
    /// retention (reschedule then always schedules the edited problem
    /// from scratch).
    pub artifact_slots: usize,
    /// Durable-state snapshot file. `None` disables persistence: no
    /// restore at startup, no periodic or drain snapshots, and the
    /// `snapshot` op answers `snapshot_error`.
    pub snapshot_path: Option<PathBuf>,
    /// Seconds between periodic snapshots; `0` disables the ticker
    /// (snapshots still happen on drain and on demand).
    pub snapshot_interval_secs: u64,
    /// Chaos/test hook: a spec containing this marker panics inside the
    /// worker (see [`crate::BatchConfig::panic_marker`]). `None` in
    /// production.
    pub panic_marker: Option<String>,
    /// Install the SIGTERM/SIGINT handler and poll it in the accept
    /// loop. The CLI sets this; tests leave it off.
    pub handle_signals: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            shed_oldest: false,
            cache_bytes: 8 * 1024 * 1024,
            default_timeout_ms: 10_000,
            max_frame_bytes: 1024 * 1024,
            io_timeout_ms: 10_000,
            degrade_min_ops: 256,
            degrade_headroom_ms: 250,
            degrade_queue_depth: 8,
            artifact_slots: 32,
            snapshot_path: None,
            snapshot_interval_secs: 0,
            panic_marker: None,
            handle_signals: false,
        }
    }
}

/// What a worker sends back to the waiting connection thread.
type WorkerReply = Result<(Arc<str>, bool), (ErrorCode, String)>;

struct Job {
    req: ScheduleRequest,
    /// `Some` makes this a reschedule job: apply the edit to the parent
    /// problem identified by `req`, repairing from retained artifacts
    /// when possible.
    edit: Option<ProblemEdit>,
    raw_key: String,
    deadline: Instant,
    depth_at_enqueue: usize,
    reply: mpsc::Sender<WorkerReply>,
}

/// Per-outcome request counters (reported by `status`).
#[derive(Debug, Default)]
struct Counters {
    ok: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    /// Reschedule requests answered by incremental repair of retained
    /// artifacts.
    reschedule_repairs: AtomicU64,
    /// Reschedule requests answered by a full run of the edited problem
    /// (structural edit, artifacts missing/evicted, clustered strategy,
    /// or a non-FTBAR scheduler).
    reschedule_fallbacks: AtomicU64,
    /// Snapshots written successfully (periodic, on-demand, and drain).
    snapshots_written: AtomicU64,
    /// Snapshot attempts that failed to write.
    snapshots_failed: AtomicU64,
    /// Snapshot requests coalesced into an already-in-flight write.
    snapshots_coalesced: AtomicU64,
    errors: [AtomicU64; 11],
}

fn code_index(code: ErrorCode) -> usize {
    match code {
        ErrorCode::BadRequest => 0,
        ErrorCode::TooLarge => 1,
        ErrorCode::SpecError => 2,
        ErrorCode::ScheduleError => 3,
        ErrorCode::Timeout => 4,
        ErrorCode::Overloaded => 5,
        ErrorCode::Poisoned => 6,
        ErrorCode::InternalPanic => 7,
        ErrorCode::ShuttingDown => 8,
        ErrorCode::BadEdit => 9,
        ErrorCode::SnapshotError => 10,
    }
}

const CODE_NAMES: [&str; 11] = [
    "bad_request",
    "too_large",
    "spec_error",
    "schedule_error",
    "timeout",
    "overloaded",
    "poisoned",
    "internal_panic",
    "shutting_down",
    "bad_edit",
    "snapshot_error",
];

/// The longest edit lineage a snapshot seed records. An artifact whose
/// chain outgrows this is still served from memory but is no longer
/// persisted — replaying an unbounded chain at restore would trade
/// startup time for an ever-rarer cache line.
const MAX_SEED_EDITS: usize = 32;

/// A retained artifact plus the replayable lineage that can recreate it
/// after a restart (`None` when the lineage is unknown or too long).
struct ArtifactEntry {
    artifacts: Arc<ScheduleArtifacts>,
    seed: Option<ArtifactSeed>,
}

/// Bounded FIFO store of retained schedule artifacts, keyed by the
/// canonical key of the response they belong to. A reschedule request
/// looks its parent up here; every retained FTBAR answer (schedule or
/// repair) is inserted, evicting the oldest distinct key over capacity.
struct ArtifactStore {
    map: HashMap<String, ArtifactEntry>,
    order: VecDeque<String>,
    cap: usize,
}

impl ArtifactStore {
    fn new(cap: usize) -> Self {
        ArtifactStore {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    fn get(&self, key: &str) -> Option<Arc<ScheduleArtifacts>> {
        self.map.get(key).map(|e| Arc::clone(&e.artifacts))
    }

    fn get_seed(&self, key: &str) -> Option<ArtifactSeed> {
        self.map.get(key).and_then(|e| e.seed.clone())
    }

    fn insert(
        &mut self,
        key: String,
        artifacts: Arc<ScheduleArtifacts>,
        seed: Option<ArtifactSeed>,
    ) {
        if self.cap == 0 {
            return;
        }
        if self
            .map
            .insert(key.clone(), ArtifactEntry { artifacts, seed })
            .is_none()
        {
            self.order.push_back(key);
            while self.order.len() > self.cap {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }

    /// The persistable seeds, oldest insertion first (snapshot order).
    fn export_seeds(&self) -> Vec<ArtifactSeed> {
        self.order
            .iter()
            .filter_map(|k| self.map.get(k).and_then(|e| e.seed.clone()))
            .collect()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// One response line per request line, plus whether the frame asked the
/// daemon to shut down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameOutcome {
    /// Write this response and keep serving.
    Reply(String),
    /// Write this response, then drain and exit.
    ShutdownRequested(String),
}

impl FrameOutcome {
    /// The response line, whichever variant.
    pub fn response(&self) -> &str {
        match self {
            FrameOutcome::Reply(r) | FrameOutcome::ShutdownRequested(r) => r,
        }
    }
}

/// What a restore attempt found, reported by `status` for the life of
/// the process.
#[derive(Debug, Clone)]
pub struct RestoreSummary {
    /// How the snapshot read ended.
    pub status: RestoreStatus,
    /// Response-cache entries re-inserted.
    pub cache_entries: usize,
    /// Raw-memo entries re-inserted.
    pub memos: usize,
    /// Poisoned keys re-inserted.
    pub poisoned: usize,
    /// Artifact seeds successfully replayed into retained artifacts.
    pub seeds_replayed: usize,
    /// Seeds dropped (stale spec, failed replay, retention disabled).
    pub seeds_dropped: usize,
}

/// Snapshot write coordination: one writer at a time, concurrent
/// requests coalesce onto the in-flight write's outcome.
#[derive(Default)]
struct SnapState {
    /// A snapshot write is in flight.
    writing: bool,
    /// Callers currently waiting to coalesce (test observability).
    waiters: usize,
    /// Bumped when a write completes, so waiters know *their* write
    /// finished rather than some earlier one.
    generation: u64,
    /// Timestamp and outcome of the most recent write.
    last: Option<(Instant, Result<SnapshotStats, String>)>,
}

/// Shared state of a running daemon. Construct with [`ServerState::new`],
/// then either drive frames directly ([`ServerState::handle_frame`], with
/// [`ServerState::spawn_workers`]) or hand it to [`serve`].
pub struct ServerState {
    config: ServerConfig,
    cache: Mutex<ResponseCache>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    artifacts: Mutex<ArtifactStore>,
    poisoned: Mutex<HashSet<String>>,
    shutdown: AtomicBool,
    started: Instant,
    counters: Counters,
    in_flight: AtomicUsize,
    active_connections: AtomicUsize,
    snap: Mutex<SnapState>,
    snap_cv: Condvar,
    restored: AtomicBool,
    restore_summary: Mutex<Option<RestoreSummary>>,
}

impl ServerState {
    /// Fresh daemon state (no workers yet).
    pub fn new(config: ServerConfig) -> Arc<Self> {
        Arc::new(ServerState {
            cache: Mutex::new(ResponseCache::new(config.cache_bytes)),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            artifacts: Mutex::new(ArtifactStore::new(config.artifact_slots)),
            poisoned: Mutex::new(HashSet::new()),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            counters: Counters::default(),
            in_flight: AtomicUsize::new(0),
            active_connections: AtomicUsize::new(0),
            snap: Mutex::new(SnapState::default()),
            snap_cv: Condvar::new(),
            restored: AtomicBool::new(false),
            restore_summary: Mutex::new(None),
            config,
        })
    }

    /// The configuration this daemon runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Whether shutdown has been requested (by frame or signal).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown: stop admitting work, wake idle workers.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue_cv.notify_all();
    }

    /// Spawns the scheduling worker pool; the handles join once shutdown
    /// has been requested and the queue has drained.
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(self);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect()
    }

    /// Handles one request frame, producing exactly one response line.
    ///
    /// This is the whole daemon minus the sockets: admission control,
    /// cache, queueing, deadline, poisoning — tests and the chaos harness
    /// call it directly.
    pub fn handle_frame(&self, line: &str) -> FrameOutcome {
        if line.len() > self.config.max_frame_bytes {
            return FrameOutcome::Reply(self.error(None, ErrorCode::TooLarge, "frame too large"));
        }
        let req = match parse_request(line) {
            Ok(r) => r,
            Err(msg) => {
                return FrameOutcome::Reply(self.error(None, ErrorCode::BadRequest, &msg));
            }
        };
        match req {
            Request::Status => FrameOutcome::Reply(self.render_status()),
            Request::Snapshot => FrameOutcome::Reply(self.handle_snapshot()),
            Request::Shutdown => {
                self.begin_shutdown();
                FrameOutcome::ShutdownRequested(
                    "{\"status\": \"ok\", \"op\": \"shutdown\", \"draining\": true}".to_owned(),
                )
            }
            Request::Schedule(req) => {
                let raw_key = req.raw_key();
                FrameOutcome::Reply(self.handle_schedule(req, None, raw_key))
            }
            Request::Reschedule(r) => {
                let raw_key = r.raw_key();
                FrameOutcome::Reply(self.handle_schedule(r.base, Some(r.edit), raw_key))
            }
        }
    }

    fn handle_schedule(
        &self,
        req: ScheduleRequest,
        edit: Option<ProblemEdit>,
        raw_key: String,
    ) -> String {
        let id = req.id.clone();
        let id = id.as_deref();
        if self.shutting_down() {
            return self.error(id, ErrorCode::ShuttingDown, "daemon is draining");
        }

        // Poisoned specs are refused cheaply, before any work.
        if self.poisoned.lock().unwrap().contains(&raw_key) {
            return self.error(
                id,
                ErrorCode::Poisoned,
                "this request previously panicked a worker and is refused",
            );
        }

        // Cache fast path: exact raw text, no parsing.
        if let Some(body) = self.cache.lock().unwrap().get_raw(&raw_key) {
            self.counters.ok.fetch_add(1, Ordering::Relaxed);
            return with_id(id, &body);
        }

        let timeout = Duration::from_millis(
            req.timeout_ms
                .unwrap_or(self.config.default_timeout_ms)
                .max(1),
        );
        let deadline = Instant::now() + timeout;
        let (tx, rx) = mpsc::channel::<WorkerReply>();

        // Admission control under the queue lock.
        {
            let mut queue = self.queue.lock().unwrap();
            if queue.len() >= self.config.queue_depth.max(1) {
                if self.config.shed_oldest {
                    if let Some(oldest) = queue.pop_front() {
                        self.counters.shed.fetch_add(1, Ordering::Relaxed);
                        let _ = oldest.reply.send(Err((
                            ErrorCode::Overloaded,
                            "shed by a newer request (shed-oldest backpressure)".to_owned(),
                        )));
                    }
                } else {
                    drop(queue);
                    return self.error(
                        id,
                        ErrorCode::Overloaded,
                        "work queue is full (reject-new backpressure)",
                    );
                }
            }
            let depth_at_enqueue = queue.len();
            queue.push_back(Job {
                req,
                edit,
                raw_key,
                deadline,
                depth_at_enqueue,
                reply: tx,
            });
        }
        self.queue_cv.notify_one();

        match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(Ok((body, degraded))) => {
                self.counters.ok.fetch_add(1, Ordering::Relaxed);
                if degraded {
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                }
                with_id(id, &body)
            }
            Ok(Err((code, message))) => self.error(id, code, &message),
            Err(_) => self.error(
                id,
                ErrorCode::Timeout,
                &format!("deadline of {} ms elapsed", timeout.as_millis()),
            ),
        }
    }

    fn error(&self, id: Option<&str>, code: ErrorCode, message: &str) -> String {
        self.counters.errors[code_index(code)].fetch_add(1, Ordering::Relaxed);
        render_error(id, code, message)
    }

    /// Cache statistics snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Collects the durable state into a [`SnapshotData`]. The three
    /// locks are taken one at a time (never nested); a snapshot is a
    /// point-in-time view per section, which is sound because every
    /// record is independently valid — restore never needs cross-section
    /// consistency (a memo without its entry resolves to a miss, a seed
    /// replays standalone).
    fn collect_snapshot(&self) -> SnapshotData {
        let (cache_entries, memos) = self.cache.lock().unwrap().export();
        let mut poisoned: Vec<String> = self.poisoned.lock().unwrap().iter().cloned().collect();
        poisoned.sort_unstable();
        let seeds = self.artifacts.lock().unwrap().export_seeds();
        SnapshotData {
            cache_entries,
            memos,
            poisoned,
            seeds,
        }
    }

    /// Writes a snapshot now (or coalesces onto one already in flight).
    /// Returns the write's stats and whether this call coalesced.
    ///
    /// # Errors
    ///
    /// A message when no snapshot path is configured or the write (this
    /// call's own, or the in-flight one a coalesced call joined) failed.
    pub fn snapshot_now(&self) -> Result<(SnapshotStats, bool), String> {
        let Some(path) = self.config.snapshot_path.as_ref() else {
            return Err("no snapshot path configured (start with --snapshot PATH)".into());
        };
        {
            let mut s = self.snap.lock().unwrap();
            if s.writing {
                // Coalesce: wait for the in-flight write and share its
                // outcome instead of stacking a second writer.
                let gen = s.generation;
                s.waiters += 1;
                while s.writing && s.generation == gen {
                    s = self.snap_cv.wait(s).unwrap();
                }
                s.waiters -= 1;
                self.counters
                    .snapshots_coalesced
                    .fetch_add(1, Ordering::Relaxed);
                return match &s.last {
                    Some((_, Ok(stats))) => Ok((*stats, true)),
                    Some((_, Err(e))) => Err(e.clone()),
                    None => Err("coalesced snapshot vanished".into()),
                };
            }
            s.writing = true;
        }
        let data = self.collect_snapshot();
        let result = persist::write_snapshot(path, &data).map_err(|e| e.to_string());
        {
            let mut s = self.snap.lock().unwrap();
            s.writing = false;
            s.generation += 1;
            s.last = Some((Instant::now(), result.clone()));
        }
        self.snap_cv.notify_all();
        match result {
            Ok(stats) => {
                self.counters
                    .snapshots_written
                    .fetch_add(1, Ordering::Relaxed);
                Ok((stats, false))
            }
            Err(e) => {
                self.counters
                    .snapshots_failed
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Restores durable state from the configured snapshot file, once,
    /// before serving. No-op without a snapshot path; a missing file is
    /// a clean first boot. Corruption degrades toward a cold start (see
    /// [`RestoreStatus`]) — this function cannot fail or panic the
    /// daemon, and every restored byte was CRC-validated.
    pub fn restore_from_snapshot(&self) {
        let Some(path) = self.config.snapshot_path.as_ref() else {
            return;
        };
        if self.restored.swap(true, Ordering::SeqCst) {
            return;
        }
        let restore = match persist::read_snapshot(path) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(_) => {
                // Unreadable file (not merely absent): treat as corrupt.
                *self.restore_summary.lock().unwrap() = Some(RestoreSummary {
                    status: RestoreStatus::RefusedCorrupt,
                    cache_entries: 0,
                    memos: 0,
                    poisoned: 0,
                    seeds_replayed: 0,
                    seeds_dropped: 0,
                });
                return;
            }
        };
        let mut summary = RestoreSummary {
            status: restore.status,
            cache_entries: restore.data.cache_entries.len(),
            memos: restore.data.memos.len(),
            poisoned: restore.data.poisoned.len(),
            seeds_replayed: 0,
            seeds_dropped: 0,
        };
        {
            let mut cache = self.cache.lock().unwrap();
            for (canonical, body) in &restore.data.cache_entries {
                cache.restore_entry(canonical, body);
            }
            for (raw, canonical) in &restore.data.memos {
                cache.restore_memo(raw, canonical);
            }
        }
        {
            let mut poisoned = self.poisoned.lock().unwrap();
            for raw in restore.data.poisoned {
                poisoned.insert(raw);
            }
        }
        for seed in restore.data.seeds {
            // Replay through the deterministic scheduler instead of
            // trusting serialized engine state. `catch_unwind` so an
            // adversarial snapshot can cost us artifacts, never the
            // daemon.
            let replayed = catch_unwind(AssertUnwindSafe(|| rehydrate_seed(&seed, &self.config)))
                .ok()
                .flatten();
            match replayed {
                Some((canonical, artifacts)) => {
                    self.artifacts.lock().unwrap().insert(
                        canonical,
                        Arc::new(artifacts),
                        Some(seed),
                    );
                    summary.seeds_replayed += 1;
                }
                None => summary.seeds_dropped += 1,
            }
        }
        *self.restore_summary.lock().unwrap() = Some(summary);
    }

    fn handle_snapshot(&self) -> String {
        match self.snapshot_now() {
            Ok((stats, coalesced)) => format!(
                "{{\"status\": \"ok\", \"op\": \"snapshot\", \"bytes\": {}, \
                 \"cache_entries\": {}, \"memos\": {}, \"poisoned\": {}, \"seeds\": {}, \
                 \"coalesced\": {}}}",
                stats.bytes,
                stats.cache_entries,
                stats.memos,
                stats.poisoned,
                stats.seeds,
                coalesced,
            ),
            Err(msg) => self.error(None, ErrorCode::SnapshotError, &msg),
        }
    }

    fn render_status(&self) -> String {
        let (stats, entries, bytes) = {
            let cache = self.cache.lock().unwrap();
            (cache.stats(), cache.len(), cache.used_bytes())
        };
        let mut out = String::from("{\"status\": \"ok\", \"op\": \"status\"");
        out.push_str(&format!(
            ", \"uptime_ms\": {}",
            self.started.elapsed().as_millis()
        ));
        out.push_str(&format!(
            ", \"queue_depth\": {}",
            self.queue.lock().unwrap().len()
        ));
        out.push_str(&format!(
            ", \"in_flight\": {}",
            self.in_flight.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            ", \"active_connections\": {}",
            self.active_connections.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(", \"workers\": {}", self.config.workers.max(1)));
        out.push_str(&format!(
            ", \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"insertions\": {}, \"entries\": {}, \"bytes\": {}, \"budget\": {}}}",
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.insertions,
            entries,
            bytes,
            self.config.cache_bytes,
        ));
        out.push_str(&format!(
            ", \"requests\": {{\"ok\": {}, \"degraded\": {}, \"shed\": {}",
            self.counters.ok.load(Ordering::Relaxed),
            self.counters.degraded.load(Ordering::Relaxed),
            self.counters.shed.load(Ordering::Relaxed),
        ));
        for (i, name) in CODE_NAMES.iter().enumerate() {
            out.push_str(&format!(
                ", \"{name}\": {}",
                self.counters.errors[i].load(Ordering::Relaxed)
            ));
        }
        out.push('}');
        out.push_str(&format!(
            ", \"reschedule\": {{\"repairs\": {}, \"fallbacks\": {}, \"artifacts\": {}}}",
            self.counters.reschedule_repairs.load(Ordering::Relaxed),
            self.counters.reschedule_fallbacks.load(Ordering::Relaxed),
            self.artifacts.lock().unwrap().len(),
        ));
        out.push_str(&self.render_snapshot_status());
        out.push('}');
        out
    }

    /// The `"snapshot"` section of the status response: configuration,
    /// written/failed/coalesced counters, the last write's age and
    /// per-section entry counts, and how the startup restore ended.
    fn render_snapshot_status(&self) -> String {
        let mut out = format!(
            ", \"snapshot\": {{\"configured\": {}, \"written\": {}, \"failed\": {}, \
             \"coalesced\": {}",
            self.config.snapshot_path.is_some(),
            self.counters.snapshots_written.load(Ordering::Relaxed),
            self.counters.snapshots_failed.load(Ordering::Relaxed),
            self.counters.snapshots_coalesced.load(Ordering::Relaxed),
        );
        let last = self.snap.lock().unwrap().last.clone();
        match last {
            Some((at, Ok(stats))) => out.push_str(&format!(
                ", \"last_age_ms\": {}, \"last_bytes\": {}, \"last_cache_entries\": {}, \
                 \"last_memos\": {}, \"last_poisoned\": {}, \"last_seeds\": {}",
                at.elapsed().as_millis(),
                stats.bytes,
                stats.cache_entries,
                stats.memos,
                stats.poisoned,
                stats.seeds,
            )),
            Some((at, Err(_))) => out.push_str(&format!(
                ", \"last_age_ms\": {}, \"last_bytes\": null",
                at.elapsed().as_millis()
            )),
            None => out.push_str(", \"last_age_ms\": null, \"last_bytes\": null"),
        }
        match self.restore_summary.lock().unwrap().as_ref() {
            Some(r) => out.push_str(&format!(
                ", \"restore\": \"{}\", \"restored_cache_entries\": {}, \
                 \"restored_memos\": {}, \"restored_poisoned\": {}, \
                 \"seeds_replayed\": {}, \"seeds_dropped\": {}",
                r.status.name(),
                r.cache_entries,
                r.memos,
                r.poisoned,
                r.seeds_replayed,
                r.seeds_dropped,
            )),
            None => out.push_str(", \"restore\": \"none\""),
        }
        out.push('}');
        out
    }
}

/// Replays an [`ArtifactSeed`] into live retained artifacts: parse the
/// base spec, apply the npf override and the edit chain, and re-run the
/// retaining scheduler. Deterministic engines make the result
/// byte-equivalent to the artifacts the seed was taken from. `None`
/// drops the seed (stale spec, inapplicable edit, failed run).
fn rehydrate_seed(
    seed: &ArtifactSeed,
    config: &ServerConfig,
) -> Option<(String, ScheduleArtifacts)> {
    if seed.scheduler != SchedulerKind::Ftbar || config.artifact_slots == 0 {
        return None;
    }
    let strategy = strategy_from_name(&seed.strategy)?;
    let problem = spec::parse_problem(&seed.spec).ok()?;
    let mut problem = match seed.npf {
        None => problem,
        Some(npf) => problem.with_npf(npf).ok()?,
    };
    for edit in &seed.edits {
        problem = edit.apply(&problem).ok()?;
    }
    let ftbar_config = FtbarConfig {
        sweep: strategy,
        ..FtbarConfig::default()
    };
    let (_schedule, artifacts) = schedule_retained(&problem, &ftbar_config).ok()?;
    if artifacts.step_count() == 0 {
        return None;
    }
    let canonical = canonical_key(
        artifacts.problem(),
        seed.scheduler,
        &seed.strategy,
        seed.include_schedule,
    );
    Some((canonical, artifacts))
}

/// Why a worker chose (or declined) the degraded path.
pub(crate) struct Pressure {
    remaining: Duration,
    depth_at_enqueue: usize,
}

fn worker_loop(state: &Arc<ServerState>) {
    let mut pools = EnginePools::default();
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if state.shutting_down() {
                    return; // queue drained, daemon draining: exit
                }
                let (q, _) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap();
                queue = q;
            }
        };
        state.in_flight.fetch_add(1, Ordering::Relaxed);
        execute_job(state, job, &mut pools);
        state.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn execute_job(state: &ServerState, job: Job, pools: &mut EnginePools) {
    let now = Instant::now();
    if now >= job.deadline {
        // The requester has already been answered `timeout`; skip the work.
        let _ = job.reply.send(Err((
            ErrorCode::Timeout,
            "deadline elapsed before execution".to_owned(),
        )));
        return;
    }
    let pressure = Pressure {
        remaining: job.deadline.saturating_duration_since(now),
        depth_at_enqueue: job.depth_at_enqueue,
    };
    let taken = std::mem::take(pools);
    let outcome = catch_unwind(AssertUnwindSafe(|| match &job.edit {
        None => compute_response(&job.req, &state.config, Some(&pressure), taken),
        Some(edit) => compute_reschedule(state, &job.req, edit, taken),
    }));
    let reply: WorkerReply = match outcome {
        Ok((result, p)) => {
            *pools = p;
            match result {
                Ok(computed) => {
                    let body: Arc<str> = Arc::from(computed.body.as_str());
                    if !computed.degraded {
                        state.cache.lock().unwrap().insert(
                            &job.raw_key,
                            &computed.canonical,
                            &body,
                        );
                    }
                    if let Some(artifacts) = computed.artifacts {
                        state.artifacts.lock().unwrap().insert(
                            computed.canonical,
                            Arc::new(artifacts),
                            computed.seed,
                        );
                    }
                    Ok((body, computed.degraded))
                }
                Err(e) => Err(e),
            }
        }
        Err(payload) => {
            // Pools died with the panicking closure; restart the arena
            // and remember the request so it is never re-run.
            *pools = EnginePools::default();
            state.poisoned.lock().unwrap().insert(job.raw_key.clone());
            Err((
                ErrorCode::InternalPanic,
                format!("worker panicked: {}", panic_message(payload.as_ref())),
            ))
        }
    };
    let _ = job.reply.send(reply);
}

/// A successfully computed schedule answer.
pub(crate) struct Computed {
    /// Rendered id-less response body (the cacheable bytes).
    pub body: String,
    /// Canonical cache key of the problem this body answers.
    pub canonical: String,
    /// True when the degraded (clustered) fallback ran; never cached.
    pub degraded: bool,
    /// Retained engine state for later incremental rescheduling, when
    /// the run produced one worth keeping.
    pub artifacts: Option<ScheduleArtifacts>,
    /// Replayable lineage of `artifacts`, persisted in snapshots so the
    /// artifact store survives restarts.
    pub seed: Option<ArtifactSeed>,
}

/// A computed schedule answer or the error code + message to report.
pub(crate) type ComputedResponse = Result<Computed, (ErrorCode, String)>;

/// Computes the full (body, canonical key, degraded) answer for a
/// schedule request. With `pressure: None` this is the *direct* path:
/// exactly what an unloaded daemon answers — the chaos harness compares
/// server bytes against it.
pub(crate) fn compute_response(
    req: &ScheduleRequest,
    config: &ServerConfig,
    pressure: Option<&Pressure>,
    pools: EnginePools,
) -> (ComputedResponse, EnginePools) {
    if let Some(marker) = &config.panic_marker {
        if req.spec.contains(marker.as_str()) {
            panic!("injected panic (marker `{marker}`)");
        }
    }
    let problem = match spec::parse_problem(&req.spec) {
        Ok(p) => p,
        Err(e) => {
            return (
                Err((ErrorCode::SpecError, format!("spec error: {e}"))),
                pools,
            )
        }
    };
    let problem = match req.npf {
        None => problem,
        Some(npf) => match problem.with_npf(npf) {
            Ok(p) => p,
            Err(e) => {
                return (
                    Err((ErrorCode::SpecError, format!("npf override: {e}"))),
                    pools,
                )
            }
        },
    };

    // Graceful degradation: under deadline pressure or a deep queue, a
    // large problem falls back from the exact sweep to the clustered
    // one. Only when the caller left the strategy choice to the daemon.
    let exact_requested = matches!(req.strategy, None | Some(SweepStrategy::Adaptive));
    let degraded = pressure.is_some_and(|p| {
        exact_requested
            && req.scheduler == SchedulerKind::Ftbar
            && problem.alg().op_count() >= config.degrade_min_ops
            && (p.remaining < Duration::from_millis(config.degrade_headroom_ms)
                || p.depth_at_enqueue >= config.degrade_queue_depth)
    });

    let strategy = if degraded {
        SweepStrategy::Clustered
    } else {
        req.strategy.unwrap_or_default()
    };
    let (schedule, pools, artifacts) = match req.scheduler {
        SchedulerKind::Ftbar => {
            let ftbar_config = FtbarConfig {
                sweep: strategy,
                ..FtbarConfig::default()
            };
            if !degraded && config.artifact_slots > 0 {
                // Retain the engine state so a later `reschedule` of this
                // problem repairs instead of re-running. Bit-identical to
                // the pooled run.
                match schedule_retained(&problem, &ftbar_config) {
                    Ok((schedule, artifacts)) => {
                        let keep = (artifacts.step_count() > 0).then_some(artifacts);
                        (schedule, pools, keep)
                    }
                    Err(e) => {
                        return (
                            Err((ErrorCode::ScheduleError, format!("schedule error: {e}"))),
                            EnginePools::default(),
                        )
                    }
                }
            } else {
                match ftbar::schedule_with_pools(&problem, &ftbar_config, pools) {
                    Ok((outcome, pools)) => (outcome.schedule, pools, None),
                    Err(e) => {
                        return (
                            Err((ErrorCode::ScheduleError, format!("schedule error: {e}"))),
                            EnginePools::default(),
                        )
                    }
                }
            }
        }
        SchedulerKind::Hbp => {
            match ftbar_hbp::schedule_with_pools(&problem, &ftbar_hbp::HbpConfig::default(), pools)
            {
                Ok((schedule, pools)) => (schedule, pools, None),
                Err(e) => {
                    return (
                        Err((ErrorCode::ScheduleError, format!("schedule error: {e}"))),
                        EnginePools::default(),
                    )
                }
            }
        }
    };
    let mut computed = render_scheduled(req, &problem, schedule, degraded);
    computed.artifacts = artifacts;
    if computed.artifacts.is_some() {
        computed.seed = Some(ArtifactSeed {
            scheduler: req.scheduler,
            strategy: strategy_name(req.strategy).to_owned(),
            npf: req.npf,
            include_schedule: req.include_schedule,
            spec: req.spec.clone(),
            edits: Vec::new(),
        });
    }
    (Ok(computed), pools)
}

/// Renders the deterministic (body, canonical key) answer for `schedule`
/// of `problem` under `req`'s rendering options. The canonical key uses
/// the *requested* strategy: degraded bodies are never cached, so the key
/// only ever labels exact responses.
fn render_scheduled(
    req: &ScheduleRequest,
    problem: &Problem,
    schedule: ftbar_core::Schedule,
    degraded: bool,
) -> Computed {
    let result = JobResult {
        scheduler: req.scheduler,
        npf: problem.npf(),
        ops: problem.alg().op_count(),
        procs: problem.arch().proc_count(),
        makespan: schedule.makespan(),
        completion: schedule.completion(),
        replicas: schedule.replica_count(),
        comms: schedule.comm_count(),
        rtc_met: problem.rtc().map(|rtc| schedule.makespan() <= rtc),
        schedule: req.include_schedule.then_some(schedule),
    };
    let canonical = canonical_key(
        problem,
        req.scheduler,
        strategy_name(req.strategy),
        req.include_schedule,
    );
    let body = render_ok(None, &result, degraded);
    Computed {
        body,
        canonical,
        degraded,
        artifacts: None,
        seed: None,
    }
}

/// Computes the answer for a `reschedule` request: parse the parent
/// problem, look up its retained artifacts by canonical key, and repair —
/// falling back to a full run of the edited problem when the artifacts
/// are missing (never scheduled, evicted, clustered) or the edit is
/// structural. The body is byte-identical to what a `schedule` request
/// for the edited problem answers; repair never degrades.
pub(crate) fn compute_reschedule(
    state: &ServerState,
    req: &ScheduleRequest,
    edit: &ProblemEdit,
    pools: EnginePools,
) -> (ComputedResponse, EnginePools) {
    let config = &state.config;
    if let Some(marker) = &config.panic_marker {
        if req.spec.contains(marker.as_str()) {
            panic!("injected panic (marker `{marker}`)");
        }
    }
    let problem = match spec::parse_problem(&req.spec) {
        Ok(p) => p,
        Err(e) => {
            return (
                Err((ErrorCode::SpecError, format!("spec error: {e}"))),
                pools,
            )
        }
    };
    let problem = match req.npf {
        None => problem,
        Some(npf) => match problem.with_npf(npf) {
            Ok(p) => p,
            Err(e) => {
                return (
                    Err((ErrorCode::SpecError, format!("npf override: {e}"))),
                    pools,
                )
            }
        },
    };

    if req.scheduler == SchedulerKind::Hbp {
        // No retained-repair path for HBP: schedule the edited problem.
        let edited = match edit.apply(&problem) {
            Ok(p) => p,
            Err(e) => return (Err((ErrorCode::BadEdit, format!("bad edit: {e}"))), pools),
        };
        state
            .counters
            .reschedule_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        return match ftbar_hbp::schedule_with_pools(
            &edited,
            &ftbar_hbp::HbpConfig::default(),
            pools,
        ) {
            Ok((schedule, pools)) => (Ok(render_scheduled(req, &edited, schedule, false)), pools),
            Err(e) => (
                Err((ErrorCode::ScheduleError, format!("schedule error: {e}"))),
                EnginePools::default(),
            ),
        };
    }

    let ftbar_config = FtbarConfig {
        sweep: req.strategy.unwrap_or_default(),
        ..FtbarConfig::default()
    };
    let parent_key = canonical_key(
        &problem,
        req.scheduler,
        strategy_name(req.strategy),
        req.include_schedule,
    );
    let (parent, parent_seed) = {
        let store = state.artifacts.lock().unwrap();
        (store.get(&parent_key), store.get_seed(&parent_key))
    };
    let had_parent = parent.is_some();
    let (schedule, artifacts, repaired) = match parent {
        Some(prev) => match reschedule(&prev, edit) {
            Ok(out) => (out.schedule, out.artifacts, !out.report.fell_back),
            Err(RescheduleError::Edit(e)) => {
                return (Err((ErrorCode::BadEdit, format!("bad edit: {e}"))), pools)
            }
            Err(RescheduleError::Schedule(e)) => {
                return (
                    Err((ErrorCode::ScheduleError, format!("schedule error: {e}"))),
                    pools,
                )
            }
        },
        None => {
            let edited = match edit.apply(&problem) {
                Ok(p) => p,
                Err(e) => return (Err((ErrorCode::BadEdit, format!("bad edit: {e}"))), pools),
            };
            match schedule_retained(&edited, &ftbar_config) {
                Ok((schedule, artifacts)) => (schedule, artifacts, false),
                Err(e) => {
                    return (
                        Err((ErrorCode::ScheduleError, format!("schedule error: {e}"))),
                        pools,
                    )
                }
            }
        }
    };
    if repaired {
        state
            .counters
            .reschedule_repairs
            .fetch_add(1, Ordering::Relaxed);
    } else {
        state
            .counters
            .reschedule_fallbacks
            .fetch_add(1, Ordering::Relaxed);
    }
    let mut computed = render_scheduled(req, artifacts.problem(), schedule, false);
    computed.artifacts =
        (artifacts.step_count() > 0 && config.artifact_slots > 0).then_some(artifacts);
    if computed.artifacts.is_some() {
        // Extend the parent's lineage by this edit; a fallback run (no
        // parent) starts a fresh lineage from the base request. A parent
        // whose own lineage was too long to persist leaves this artifact
        // unpersisted too.
        computed.seed = if had_parent {
            parent_seed.and_then(|mut s| {
                (s.edits.len() < MAX_SEED_EDITS).then(|| {
                    s.edits.push(edit.clone());
                    s
                })
            })
        } else {
            Some(ArtifactSeed {
                scheduler: req.scheduler,
                strategy: strategy_name(req.strategy).to_owned(),
                npf: req.npf,
                include_schedule: req.include_schedule,
                spec: req.spec.clone(),
                edits: vec![edit.clone()],
            })
        };
    }
    (Ok(computed), pools)
}

/// The response an unloaded daemon gives `req`, bypassing every queue and
/// cache: the byte-identity reference for tests and the chaos harness.
pub fn direct_response(req: &ScheduleRequest) -> String {
    let config = ServerConfig::default();
    let (result, _pools) = compute_response(req, &config, None, EnginePools::default());
    match result {
        Ok(computed) => with_id(req.id.as_deref(), &computed.body),
        Err((code, message)) => render_error(req.id.as_deref(), code, &message),
    }
}

// ---------------------------------------------------------------------------
// Listener shell
// ---------------------------------------------------------------------------

/// Runs the daemon on `listener` until a `shutdown` request (or, with
/// [`ServerConfig::handle_signals`], SIGTERM/SIGINT) drains it.
///
/// Returns `Ok(())` after a clean drain — the process should then exit 0.
///
/// # Errors
///
/// Propagates listener setup failures (bind, nonblocking mode). Accept
/// and per-connection I/O errors are absorbed: a broken client must never
/// take the daemon down.
pub fn serve(listener: &Listener, config: ServerConfig) -> std::io::Result<()> {
    let state = ServerState::new(config);
    serve_with_state(listener, &state)
}

/// [`serve`] over caller-constructed state (tests and the chaos harness
/// keep a handle to inspect counters while the daemon runs).
pub fn serve_with_state(listener: &Listener, state: &Arc<ServerState>) -> std::io::Result<()> {
    if state.config.handle_signals {
        signal::install();
    }
    // Warm restart: restore durable state before the first connection so
    // no request can observe a half-restored cache.
    state.restore_from_snapshot();
    let workers = state.spawn_workers();
    let ticker = spawn_snapshot_ticker(state);
    match listener {
        Listener::Unix(path) => {
            // A stale socket file from a crashed run would fail the bind.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            accept_loop(state, || match l.accept() {
                Ok((stream, _)) => {
                    let timeout = Duration::from_millis(state.config.io_timeout_ms.max(1));
                    let _ = stream.set_read_timeout(Some(timeout));
                    let _ = stream.set_write_timeout(Some(timeout));
                    let reader = stream.try_clone().ok()?;
                    Some((
                        Box::new(reader) as Box<dyn Read + Send>,
                        Box::new(stream) as Box<dyn Write + Send>,
                    ))
                }
                Err(_) => None,
            });
            let _ = std::fs::remove_file(path);
        }
        Listener::Tcp(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            accept_loop(state, || match l.accept() {
                Ok((stream, _)) => {
                    let timeout = Duration::from_millis(state.config.io_timeout_ms.max(1));
                    let _ = stream.set_read_timeout(Some(timeout));
                    let _ = stream.set_write_timeout(Some(timeout));
                    let _ = stream.set_nodelay(true);
                    let reader = stream.try_clone().ok()?;
                    Some((
                        Box::new(reader) as Box<dyn Read + Send>,
                        Box::new(stream) as Box<dyn Write + Send>,
                    ))
                }
                Err(_) => None,
            });
        }
    }

    // Drain: workers exit once the queue is empty, connections once their
    // client hangs up or times out (bounded by io_timeout).
    state.begin_shutdown();
    for w in workers {
        let _ = w.join();
    }
    if let Some(t) = ticker {
        let _ = t.join();
    }
    // Final snapshot after the queue has drained, so the file carries
    // everything the daemon learned — including from requests that were
    // still in flight when shutdown began. This is the SIGTERM path too:
    // the signal only sets a latch, so a snapshot can never be torn by
    // it, only taken here after the drain.
    if state.config.snapshot_path.is_some() {
        let _ = state.snapshot_now();
    }
    let grace = Duration::from_millis(2 * state.config.io_timeout_ms.max(1));
    let drain_start = Instant::now();
    while state.active_connections.load(Ordering::Relaxed) > 0 && drain_start.elapsed() < grace {
        std::thread::sleep(Duration::from_millis(2));
    }
    Ok(())
}

/// Spawns the periodic-snapshot thread, when configured. Polls the
/// shutdown latch every 25 ms so drain is never delayed by a long
/// interval; the final drain snapshot is taken by [`serve_with_state`]
/// after the workers join, not here.
fn spawn_snapshot_ticker(state: &Arc<ServerState>) -> Option<std::thread::JoinHandle<()>> {
    if state.config.snapshot_path.is_none() || state.config.snapshot_interval_secs == 0 {
        return None;
    }
    let state = Arc::clone(state);
    Some(std::thread::spawn(move || {
        let period = Duration::from_secs(state.config.snapshot_interval_secs);
        let mut last = Instant::now();
        while !state.shutting_down() {
            std::thread::sleep(Duration::from_millis(25));
            if last.elapsed() >= period {
                let _ = state.snapshot_now();
                last = Instant::now();
            }
        }
    }))
}

/// Polls `accept` until shutdown; `accept` returns a reader/writer pair
/// for each new connection or `None` when no connection is ready.
fn accept_loop<F>(state: &Arc<ServerState>, accept: F)
where
    F: Fn() -> Option<(Box<dyn Read + Send>, Box<dyn Write + Send>)>,
{
    loop {
        if state.shutting_down() || (state.config.handle_signals && signal::requested()) {
            state.begin_shutdown();
            return;
        }
        match accept() {
            Some((reader, writer)) => {
                let state = Arc::clone(state);
                state.active_connections.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || {
                    handle_connection(&state, reader, writer);
                    state.active_connections.fetch_sub(1, Ordering::Relaxed);
                });
            }
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection: reads byte-capped JSON lines, answers each with
/// exactly one response line. Any I/O error (including a stalled peer
/// tripping the socket timeout) closes the connection; the daemon lives
/// on.
fn handle_connection(
    state: &ServerState,
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
) {
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(writer);
    let limit = state.config.max_frame_bytes as u64 + 1;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        let n = match (&mut reader).take(limit).read_until(b'\n', &mut buf) {
            Ok(n) => n,
            Err(_) => return, // stalled or broken client
        };
        if n == 0 {
            return; // EOF
        }
        if buf.last() != Some(&b'\n') && n as u64 >= limit {
            // Oversized frame: answer and close — the stream cannot be
            // resynchronized to the next frame boundary.
            let resp = state.error(None, ErrorCode::TooLarge, "frame exceeds max_frame_bytes");
            let _ = writeln!(writer, "{resp}");
            let _ = writer.flush();
            return;
        }
        let line = match std::str::from_utf8(&buf) {
            Ok(s) => s.trim_end_matches(['\n', '\r']).trim(),
            Err(_) => {
                let resp = state.error(None, ErrorCode::BadRequest, "frame is not UTF-8");
                if writeln!(writer, "{resp}").is_err() || writer.flush().is_err() {
                    return;
                }
                continue;
            }
        };
        if line.is_empty() {
            continue;
        }
        match state.handle_frame(line) {
            FrameOutcome::Reply(resp) => {
                if writeln!(writer, "{resp}").is_err() {
                    return;
                }
                // Flush only when no pipelined frame is already buffered:
                // a deep pipeline gets its replies batched into a few
                // syscalls, while strict request/response still sees the
                // reply immediately (the read buffer is empty then).
                if reader.buffer().is_empty() && writer.flush().is_err() {
                    return;
                }
            }
            FrameOutcome::ShutdownRequested(resp) => {
                let _ = writeln!(writer, "{resp}");
                let _ = writer.flush();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_snapshot_requests_coalesce_not_corrupt() {
        let dir = std::env::temp_dir().join(format!("ftbar-snapcoal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let state = ServerState::new(ServerConfig {
            snapshot_path: Some(dir.join("state.snap")),
            ..ServerConfig::default()
        });
        // Simulate an in-flight write, park two callers on it.
        state.snap.lock().unwrap().writing = true;
        let joiners: Vec<_> = (0..2)
            .map(|_| {
                let st = Arc::clone(&state);
                std::thread::spawn(move || st.snapshot_now())
            })
            .collect();
        // Deterministic rendezvous: wait until both callers are parked.
        while state.snap.lock().unwrap().waiters != 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Complete the fake write; both callers must adopt its outcome.
        {
            let mut s = state.snap.lock().unwrap();
            s.writing = false;
            s.generation += 1;
            s.last = Some((Instant::now(), Ok(SnapshotStats::default())));
        }
        state.snap_cv.notify_all();
        for j in joiners {
            let (stats, coalesced) = j.join().unwrap().unwrap();
            assert!(coalesced, "parked caller must coalesce, not re-write");
            assert_eq!(stats, SnapshotStats::default());
        }
        assert_eq!(
            state.counters.snapshots_coalesced.load(Ordering::Relaxed),
            2
        );
        assert_eq!(state.counters.snapshots_written.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_op_without_path_answers_snapshot_error() {
        let state = ServerState::new(ServerConfig::default());
        let out = state.handle_frame(r#"{"op": "snapshot"}"#);
        assert!(
            out.response().contains("\"code\": \"snapshot_error\""),
            "got {}",
            out.response()
        );
        let status = state.handle_frame(r#"{"op": "status"}"#);
        assert!(status.response().contains("\"configured\": false"));
        assert!(status.response().contains("\"restore\": \"none\""));
        assert!(status.response().contains("\"snapshot_error\": 1"));
    }

    #[test]
    fn snapshot_op_writes_a_loadable_file() {
        let dir = std::env::temp_dir().join(format!("ftbar-snapop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let state = ServerState::new(ServerConfig {
            snapshot_path: Some(path.clone()),
            ..ServerConfig::default()
        });
        state.poisoned.lock().unwrap().insert("bad-key".into());
        let out = state.handle_frame(r#"{"op": "snapshot"}"#);
        assert!(out.response().contains("\"op\": \"snapshot\""));
        assert!(out.response().contains("\"poisoned\": 1"));
        let restore = persist::read_snapshot(&path).unwrap().unwrap();
        assert_eq!(restore.status, RestoreStatus::Restored);
        assert_eq!(restore.data.poisoned, vec!["bad-key".to_owned()]);
        let status = state.handle_frame(r#"{"op": "status"}"#);
        assert!(status.response().contains("\"written\": 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
