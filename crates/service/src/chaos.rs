//! Deterministic fault-injection harness driving the real daemon.
//!
//! One seeded [`StdRng`] (the same discipline as `ftbar_sim::scenario`)
//! draws every event: normal requests, worker panics, malformed and
//! truncated frames, oversized payloads, stalled clients, cache-pressure
//! storms. The harness runs a real server on a temp Unix socket and
//! checks three invariants the whole PR rests on:
//!
//! 1. **Liveness** — the daemon answers a well-formed request after every
//!    injected fault, and shuts down cleanly at the end.
//! 2. **Byte identity** — every uninjected response is byte-identical to
//!    the direct, cache-free, queue-free [`direct_response`] bytes.
//! 3. **Code mapping** — every injected failure maps to its documented
//!    [`ErrorCode`](crate::proto::ErrorCode): worker panics to
//!    `internal_panic` (then `poisoned`), malformed frames to
//!    `bad_request`, oversized frames to `too_large`.
//!
//! Event *choices* are deterministic in the seed; wall-clock timing (and
//! therefore cache hit counts) is not, which is why responses carry no
//! cache markers.
//!
//! [`run_restart`] extends the discipline across process generations: a
//! seeded campaign repeatedly populates a daemon, snapshots it, kills
//! it, *tampers with the snapshot file* (truncation, bit flips, version
//! skew, stale temp-file litter from a simulated mid-write kill), and
//! restarts — asserting that every generation comes up serving, that the
//! `status` restore outcome matches the injected damage, and that every
//! replayed request answers bytes identical to its pre-restart response
//! whether it was restored or recomputed cold.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::client::{request, Client, RequestOpts};
use crate::persist;
use crate::proto::ScheduleRequest;
use crate::server::{direct_response, serve_with_state, Listener, ServerConfig, ServerState};
use crate::SchedulerKind;

/// The marker the harness plants in specs destined to panic a worker.
pub const PANIC_MARKER: &str = "__chaos_panic__";

/// Chaos campaign configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the single RNG driving every injection choice.
    pub seed: u64,
    /// Number of injected events.
    pub events: usize,
    /// Pool of valid spec texts the normal traffic draws from.
    pub specs: Vec<String>,
    /// Unix-socket path for the temp daemon.
    pub socket: PathBuf,
    /// Daemon configuration; the harness forces `panic_marker` to
    /// [`PANIC_MARKER`] and keeps `handle_signals` off.
    pub server: ServerConfig,
}

impl ChaosConfig {
    /// A campaign over `specs` with tight-but-safe daemon limits: small
    /// cache (storms evict), small frames (oversize is cheap to hit),
    /// short I/O timeout (stalls resolve quickly).
    pub fn quick(seed: u64, events: usize, specs: Vec<String>, socket: PathBuf) -> Self {
        ChaosConfig {
            seed,
            events,
            specs,
            socket,
            server: ServerConfig {
                workers: 2,
                cache_bytes: 16 * 1024,
                max_frame_bytes: 16 * 1024,
                io_timeout_ms: 150,
                default_timeout_ms: 5_000,
                ..ServerConfig::default()
            },
        }
    }
}

/// What a chaos campaign observed.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Uninjected requests whose bytes were compared against
    /// [`direct_response`].
    pub normal: u64,
    /// Injected worker panics (each also probes the poisoned refusal).
    pub panics: u64,
    /// Malformed frames sent.
    pub malformed: u64,
    /// Truncated frames sent (connection cut mid-frame).
    pub truncated: u64,
    /// Oversized frames sent.
    pub oversized: u64,
    /// Stalled/slow-client connections.
    pub stalled: u64,
    /// Cache-pressure storm requests.
    pub storm: u64,
    /// Invariant violations; empty on a green campaign.
    pub violations: Vec<String>,
    /// Whether the daemon drained and the serve loop returned cleanly.
    pub clean_shutdown: bool,
}

impl ChaosReport {
    /// Panics with every violation if the campaign was not green.
    pub fn assert_green(&self) {
        assert!(
            self.violations.is_empty() && self.clean_shutdown,
            "chaos campaign failed (clean_shutdown={}):\n{}",
            self.clean_shutdown,
            self.violations.join("\n")
        );
    }
}

/// Runs a chaos campaign: starts a daemon, injects `config.events`
/// seeded faults, verifies the invariants, shuts the daemon down.
pub fn run(config: &ChaosConfig) -> ChaosReport {
    assert!(!config.specs.is_empty(), "chaos needs at least one spec");
    let mut server_config = config.server.clone();
    server_config.panic_marker = Some(PANIC_MARKER.to_owned());
    server_config.handle_signals = false;
    let direct_config = server_config.clone();

    let listener = Listener::Unix(config.socket.clone());
    let state = ServerState::new(server_config);
    let serve_state = Arc::clone(&state);
    let serve_listener = listener.clone();
    let daemon = std::thread::spawn(move || serve_with_state(&serve_listener, &serve_state));

    let mut report = ChaosReport::default();
    let opts = RequestOpts {
        attempts: 5,
        base_backoff: Duration::from_millis(10),
        overall_deadline: Duration::from_secs(20),
        io_timeout: Duration::from_secs(5),
    };

    // Wait for the socket to come up.
    if let Err(e) = request(&listener, "{\"op\": \"status\"}", &opts) {
        report.violations.push(format!("daemon never came up: {e}"));
        state.begin_shutdown();
        let _ = daemon.join();
        return report;
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    for event in 0..config.events {
        match rng.gen_range(0u32..100) {
            // Uninjected request: bytes must equal the direct path.
            0..=39 => {
                let req = draw_request(&mut rng, &config.specs, event);
                check_normal(&listener, &opts, &req, &mut report);
                report.normal += 1;
            }
            // Worker panic, then the poisoned refusal for the same spec.
            40..=49 => {
                let line = format!(
                    "{{\"spec\": \"{} {}\"}}",
                    PANIC_MARKER,
                    event // distinct per event: first hit panics, second is poisoned
                );
                expect_code(
                    &listener,
                    &opts,
                    &line,
                    "internal_panic",
                    &mut report.violations,
                );
                expect_code(&listener, &opts, &line, "poisoned", &mut report.violations);
                report.panics += 1;
            }
            // Malformed frame.
            50..=59 => {
                let bad = ["{", "not json", "[]", "{\"op\": 7}", "{\"op\": \"nope\"}"]
                    [rng.gen_range(0usize..5)];
                expect_code(&listener, &opts, bad, "bad_request", &mut report.violations);
                report.malformed += 1;
            }
            // Truncated frame: cut the connection mid-frame. No response
            // is owed; the daemon must simply survive.
            60..=69 => {
                if let Ok(mut s) = UnixStream::connect(&config.socket) {
                    let cut = rng.gen_range(1usize..20);
                    let _ = s.write_all(&b"{\"op\": \"status\"}"[..cut.min(16)]);
                    drop(s);
                }
                report.truncated += 1;
            }
            // Oversized frame.
            70..=74 => {
                let big = format!(
                    "{{\"spec\": \"{}\"}}",
                    "x".repeat(state.config().max_frame_bytes + 1)
                );
                expect_code(&listener, &opts, &big, "too_large", &mut report.violations);
                report.oversized += 1;
            }
            // Stalled client: write half a frame, outlive the I/O
            // timeout, then try to finish.
            75..=79 => {
                if let Ok(mut s) = UnixStream::connect(&config.socket) {
                    let _ = s.write_all(b"{\"op\": \"stat");
                    std::thread::sleep(Duration::from_millis(state.config().io_timeout_ms + 50));
                    // The server has dropped us by now; either write may
                    // fail, and that is the point — no daemon hang.
                    let _ = s.write_all(b"us\"}\n");
                }
                report.stalled += 1;
            }
            // Cache-pressure storm: a pipelined burst of near-duplicate
            // requests under a tiny cache budget, each byte-checked.
            _ => {
                let burst = rng.gen_range(4usize..10);
                if let Ok(mut client) = Client::connect(&listener) {
                    for k in 0..burst {
                        let req = draw_request(&mut rng, &config.specs, event * 31 + k);
                        let line = render_request_line(&req);
                        match client.send(&line) {
                            Ok(resp) => {
                                let expected = direct_with(&req, &direct_config);
                                if resp != expected {
                                    report.violations.push(format!(
                                        "storm response diverged for {line}:\n got {resp}\n want {expected}"
                                    ));
                                }
                            }
                            Err(e) => report.violations.push(format!("storm request failed: {e}")),
                        }
                        report.storm += 1;
                    }
                }
            }
        }

        // Liveness probe after every event: the daemon answers status.
        if let Err(e) = request(&listener, "{\"op\": \"status\"}", &opts) {
            report
                .violations
                .push(format!("daemon unresponsive after event {event}: {e}"));
            break;
        }
    }

    // Clean shutdown via the protocol.
    match request(&listener, "{\"op\": \"shutdown\"}", &opts) {
        Ok(resp) => {
            if !resp.contains("\"op\": \"shutdown\"") {
                report
                    .violations
                    .push(format!("unexpected shutdown response: {resp}"));
            }
        }
        Err(e) => report.violations.push(format!("shutdown failed: {e}")),
    }
    match daemon.join() {
        Ok(Ok(())) => report.clean_shutdown = true,
        Ok(Err(e)) => report.violations.push(format!("serve returned error: {e}")),
        Err(_) => report.violations.push("serve thread panicked".to_owned()),
    }
    report
}

/// Draws a request over the spec pool: varies scheduler, npf override,
/// id, and trailing whitespace (distinct raw keys, same canonical key).
fn draw_request(rng: &mut StdRng, specs: &[String], salt: usize) -> ScheduleRequest {
    let mut spec = specs[rng.gen_range(0usize..specs.len())].clone();
    for _ in 0..rng.gen_range(0usize..3) {
        spec.push(' '); // same canonical problem, different raw text
    }
    ScheduleRequest {
        id: rng.gen_bool(0.5).then(|| format!("chaos-{salt}")),
        spec,
        scheduler: if rng.gen_bool(0.8) {
            SchedulerKind::Ftbar
        } else {
            SchedulerKind::Hbp
        },
        npf: if rng.gen_bool(0.3) {
            Some(rng.gen_range(0u32..2))
        } else {
            None
        },
        strategy: None,
        timeout_ms: None,
        include_schedule: rng.gen_bool(0.2),
    }
}

fn render_request_line(req: &ScheduleRequest) -> String {
    let mut line = String::from("{");
    if let Some(id) = &req.id {
        line.push_str(&format!(
            "\"id\": {}, ",
            serde_json::to_string(id).expect("strings serialize")
        ));
    }
    line.push_str(&format!(
        "\"spec\": {}, \"scheduler\": \"{}\"",
        serde_json::to_string(&req.spec).expect("strings serialize"),
        req.scheduler.name()
    ));
    if let Some(npf) = req.npf {
        line.push_str(&format!(", \"npf\": {npf}"));
    }
    if req.include_schedule {
        line.push_str(", \"include_schedule\": true");
    }
    line.push('}');
    line
}

fn direct_with(req: &ScheduleRequest, config: &ServerConfig) -> String {
    // `direct_response` uses the default config; the chaos daemon runs
    // with a panic marker, which must not change uninjected responses —
    // pin that by computing against the daemon's own config.
    use crate::server::compute_response;
    use ftbar_core::engine::EnginePools;
    let (result, _pools) = compute_response(req, config, None, EnginePools::default());
    match result {
        Ok(computed) => crate::proto::with_id(req.id.as_deref(), &computed.body),
        Err((code, message)) => crate::proto::render_error(req.id.as_deref(), code, &message),
    }
}

fn check_normal(
    listener: &Listener,
    opts: &RequestOpts,
    req: &ScheduleRequest,
    report: &mut ChaosReport,
) {
    let line = render_request_line(req);
    match request(listener, &line, opts) {
        Ok(resp) => {
            let expected = direct_response(req);
            if resp != expected {
                report.violations.push(format!(
                    "response diverged for {line}:\n got {resp}\n want {expected}"
                ));
            }
        }
        Err(e) => report
            .violations
            .push(format!("uninjected request failed: {e}")),
    }
}

fn expect_code(
    listener: &Listener,
    opts: &RequestOpts,
    line: &str,
    code: &str,
    violations: &mut Vec<String>,
) {
    match request(listener, line, opts) {
        Ok(resp) => {
            let want = format!("\"code\": \"{code}\"");
            if !resp.contains(&want) {
                violations.push(format!(
                    "expected {want} for frame {line:.60}, got {resp:.200}"
                ));
            }
        }
        Err(e) => violations.push(format!(
            "injected frame got no response (wanted {code}): {e}"
        )),
    }
}

// ---------------------------------------------------------------------------
// Restart campaigns
// ---------------------------------------------------------------------------

/// Restart-chaos campaign configuration.
#[derive(Debug, Clone)]
pub struct RestartConfig {
    /// Seed of the single RNG driving every injection choice.
    pub seed: u64,
    /// Daemon generations (each ends in a kill + snapshot tamper).
    pub rounds: usize,
    /// Pool of valid spec texts the populate traffic draws from.
    pub specs: Vec<String>,
    /// Directory for the per-round sockets and the snapshot file.
    pub dir: PathBuf,
    /// Daemon configuration; the harness forces the snapshot path, the
    /// panic marker, and keeps `handle_signals` off.
    pub server: ServerConfig,
}

impl RestartConfig {
    /// A campaign over `specs` with a small cache and short timeouts.
    pub fn quick(seed: u64, rounds: usize, specs: Vec<String>, dir: PathBuf) -> Self {
        RestartConfig {
            seed,
            rounds,
            specs,
            dir,
            server: ServerConfig {
                workers: 2,
                cache_bytes: 256 * 1024,
                io_timeout_ms: 500,
                default_timeout_ms: 5_000,
                ..ServerConfig::default()
            },
        }
    }
}

/// What a restart campaign observed.
#[derive(Debug, Default)]
pub struct RestartReport {
    /// Daemon generations started.
    pub rounds: u64,
    /// Restarts that reported a full restore.
    pub restored: u64,
    /// Restarts that dropped a torn tail but kept a valid prefix.
    pub tail_dropped: u64,
    /// Restarts that refused the snapshot and started cold.
    pub refused: u64,
    /// Snapshot-during-load storms run.
    pub storms: u64,
    /// Replayed requests whose bytes were compared against their
    /// pre-restart responses.
    pub byte_checked: u64,
    /// Invariant violations; empty on a green campaign.
    pub violations: Vec<String>,
}

impl RestartReport {
    /// Panics with every violation if the campaign was not green.
    pub fn assert_green(&self) {
        assert!(
            self.violations.is_empty(),
            "restart campaign failed:\n{}",
            self.violations.join("\n")
        );
    }
}

/// The snapshot damage injected between two daemon generations, and what
/// restore outcome each kind of damage permits.
enum Tamper {
    /// File untouched; stale garbage littered at the temp path (the
    /// residue of a writer killed mid-snapshot, pre-rename).
    MidWriteKill,
    /// File cut at a seeded offset.
    Truncate,
    /// One seeded bit flipped.
    BitFlip,
    /// Header rewritten to an unknown format version.
    VersionSkew,
}

impl Tamper {
    fn allowed_outcomes(&self) -> &'static [&'static str] {
        match self {
            Tamper::MidWriteKill => &["restored"],
            Tamper::Truncate | Tamper::BitFlip => &["partial-tail-drop", "refused-corrupt"],
            Tamper::VersionSkew => &["refused-corrupt"],
        }
    }
}

/// Runs a restart-chaos campaign: `rounds` daemon generations sharing one
/// snapshot file, each generation verifying the previous one's damage was
/// absorbed (serving, correct restore outcome, byte-identical replays),
/// then taking fresh damage.
pub fn run_restart(config: &RestartConfig) -> RestartReport {
    assert!(!config.specs.is_empty(), "restart chaos needs a spec");
    let _ = std::fs::create_dir_all(&config.dir);
    let snap = config.dir.join("chaos.snap");
    let _ = std::fs::remove_file(&snap);
    let _ = std::fs::remove_file(persist::temp_path(&snap));

    let mut server_config = config.server.clone();
    server_config.panic_marker = Some(PANIC_MARKER.to_owned());
    server_config.handle_signals = false;
    server_config.snapshot_path = Some(snap.clone());
    let direct_config = server_config.clone();

    let mut report = RestartReport::default();
    let opts = RequestOpts {
        attempts: 5,
        base_backoff: Duration::from_millis(10),
        overall_deadline: Duration::from_secs(20),
        io_timeout: Duration::from_secs(5),
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let poison_line = format!("{{\"spec\": \"{PANIC_MARKER} restart probe\"}}");
    // (request line, response bytes) pairs accumulated across rounds;
    // every generation must reproduce all of them exactly.
    let mut recorded: Vec<(String, String)> = Vec::new();
    // What the previous round injected; None before the first restart.
    let mut last_tamper: Option<Tamper> = None;

    for round in 0..config.rounds {
        let socket = config.dir.join(format!("restart-{round}.sock"));
        let listener = Listener::Unix(socket);
        let state = ServerState::new(server_config.clone());
        let serve_state = Arc::clone(&state);
        let serve_listener = listener.clone();
        let daemon = std::thread::spawn(move || serve_with_state(&serve_listener, &serve_state));
        if let Err(e) = request(&listener, "{\"op\": \"status\"}", &opts) {
            report
                .violations
                .push(format!("round {round}: daemon never came up: {e}"));
            state.begin_shutdown();
            let _ = daemon.join();
            break;
        }
        report.rounds += 1;

        // Verify the previous generation's damage was absorbed.
        if let Some(tamper) = last_tamper.take() {
            let status = request(&listener, "{\"op\": \"status\"}", &opts).unwrap_or_default();
            let outcome = tamper
                .allowed_outcomes()
                .iter()
                .find(|o| status.contains(&format!("\"restore\": \"{o}\"")));
            match outcome {
                Some(&"restored") => report.restored += 1,
                Some(&"partial-tail-drop") => report.tail_dropped += 1,
                Some(&"refused-corrupt") => report.refused += 1,
                _ => report.violations.push(format!(
                    "round {round}: restore outcome not in {:?}: {status:.400}",
                    tamper.allowed_outcomes()
                )),
            }
            let strict_poison = matches!(tamper, Tamper::MidWriteKill);
            if strict_poison && !status.contains("\"internal_panic\": 0") {
                report.violations.push(format!(
                    "round {round}: restored daemon shows panics before any probe: {status:.400}"
                ));
            }
            // Byte identity: every recorded response must be reproduced,
            // restored from the snapshot or recomputed cold alike.
            for (line, expected) in &recorded {
                match request(&listener, line, &opts) {
                    Ok(resp) => {
                        if &resp != expected {
                            report.violations.push(format!(
                                "round {round}: replay diverged for {line}:\n got {resp}\n want {expected}"
                            ));
                        }
                    }
                    Err(e) => report
                        .violations
                        .push(format!("round {round}: replay failed: {e}")),
                }
                report.byte_checked += 1;
            }
            // The poisoned probe: a full restore must refuse it without
            // re-running it (no worker panic); after a degraded restore
            // it may panic once more, but must answer and stay up.
            match request(&listener, &poison_line, &opts) {
                Ok(resp) => {
                    if strict_poison && !resp.contains("\"code\": \"poisoned\"") {
                        report.violations.push(format!(
                            "round {round}: restored daemon re-ran a known crasher: {resp:.200}"
                        ));
                    } else if !resp.contains("\"code\": \"poisoned\"")
                        && !resp.contains("\"code\": \"internal_panic\"")
                    {
                        report.violations.push(format!(
                            "round {round}: unexpected poison-probe answer: {resp:.200}"
                        ));
                    }
                }
                Err(e) => report
                    .violations
                    .push(format!("round {round}: poison probe failed: {e}")),
            }
        } else {
            // First generation: teach the daemon its poisoned spec.
            for want in ["internal_panic", "poisoned"] {
                expect_code(&listener, &opts, &poison_line, want, &mut report.violations);
            }
        }

        // Populate fresh traffic (recorded for future replays), with a
        // reschedule riding along so artifact seeds enter the snapshot.
        for k in 0..3 {
            let req = draw_request(&mut rng, &config.specs, round * 97 + k);
            let line = render_request_line(&req);
            match request(&listener, &line, &opts) {
                Ok(resp) => {
                    let expected = direct_with(&req, &direct_config);
                    if resp != expected {
                        report.violations.push(format!(
                            "round {round}: populate diverged for {line}:\n got {resp}\n want {expected}"
                        ));
                    }
                    recorded.push((line, resp));
                }
                Err(e) => report
                    .violations
                    .push(format!("round {round}: populate failed: {e}")),
            }
        }

        // Snapshot-during-load storm: pipelined schedule traffic on one
        // connection racing on-demand snapshots from another.
        if rng.gen_bool(0.5) {
            report.storms += 1;
            let storm_listener = listener.clone();
            let storm_opts = opts.clone();
            let snapper = std::thread::spawn(move || {
                let mut failures = Vec::new();
                for _ in 0..3 {
                    match request(&storm_listener, "{\"op\": \"snapshot\"}", &storm_opts) {
                        Ok(resp) => {
                            if !resp.contains("\"op\": \"snapshot\"") {
                                failures.push(format!("storm snapshot answered: {resp:.200}"));
                            }
                        }
                        Err(e) => failures.push(format!("storm snapshot failed: {e}")),
                    }
                }
                failures
            });
            if let Ok(mut client) = Client::connect(&listener) {
                for k in 0..6 {
                    let req = draw_request(&mut rng, &config.specs, round * 131 + k + 17);
                    let line = render_request_line(&req);
                    match client.send(&line) {
                        Ok(resp) => {
                            let expected = direct_with(&req, &direct_config);
                            if resp != expected {
                                report.violations.push(format!(
                                    "round {round}: storm response diverged for {line}"
                                ));
                            }
                            recorded.push((line, resp));
                        }
                        Err(e) => report
                            .violations
                            .push(format!("round {round}: storm request failed: {e}")),
                    }
                }
            }
            if let Ok(failures) = snapper.join() {
                report.violations.extend(failures);
            }
        }

        // Snapshot on demand, then drain (which snapshots once more).
        match request(&listener, "{\"op\": \"snapshot\"}", &opts) {
            Ok(resp) => {
                if !resp.contains("\"op\": \"snapshot\"") {
                    report
                        .violations
                        .push(format!("round {round}: snapshot answered: {resp:.200}"));
                }
            }
            Err(e) => report
                .violations
                .push(format!("round {round}: snapshot failed: {e}")),
        }
        let _ = request(&listener, "{\"op\": \"shutdown\"}", &opts);
        match daemon.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => report
                .violations
                .push(format!("round {round}: serve returned error: {e}")),
            Err(_) => report
                .violations
                .push(format!("round {round}: serve thread panicked")),
        }

        // Inject seeded damage for the next generation to absorb.
        if round + 1 < config.rounds {
            last_tamper = Some(tamper_snapshot(&snap, &mut rng, &mut report.violations));
        }
    }
    report
}

/// Applies one seeded tamper to the snapshot file, returning what was
/// done so the next generation's restore outcome can be checked.
fn tamper_snapshot(snap: &PathBuf, rng: &mut StdRng, violations: &mut Vec<String>) -> Tamper {
    let bytes = match std::fs::read(snap) {
        Ok(b) => b,
        Err(e) => {
            violations.push(format!("snapshot unreadable before tamper: {e}"));
            return Tamper::MidWriteKill;
        }
    };
    match rng.gen_range(0u32..4) {
        0 => {
            // Kill mid-snapshot: the atomic-rename discipline means a
            // writer killed before the rename leaves the old snapshot
            // intact plus a partial temp file.
            let litter: Vec<u8> = (0..rng.gen_range(1usize..64))
                .map(|_| rng.gen_range(0u32..256) as u8)
                .collect();
            let _ = std::fs::write(persist::temp_path(snap), litter);
            Tamper::MidWriteKill
        }
        1 => {
            let cut = rng.gen_range(1usize..bytes.len());
            let _ = std::fs::write(snap, &bytes[..cut]);
            Tamper::Truncate
        }
        2 => {
            let mut corrupt = bytes;
            let idx = rng.gen_range(0usize..corrupt.len());
            corrupt[idx] ^= 1 << rng.gen_range(0u32..8);
            let _ = std::fs::write(snap, corrupt);
            Tamper::BitFlip
        }
        _ => {
            let mut skewed = bytes;
            skewed[8..12].copy_from_slice(&0xFFFF_FFFEu32.to_le_bytes());
            let _ = std::fs::write(snap, skewed);
            Tamper::VersionSkew
        }
    }
}
