//! In-crate client for the scheduling daemon: one-shot requests with
//! retry + jittered exponential backoff, and a persistent pipelined
//! connection for throughput work.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use crate::server::Listener;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// All attempts failed; the last I/O error.
    Io(std::io::Error),
    /// The overall deadline elapsed before a response arrived.
    DeadlineElapsed,
    /// The server closed the connection without responding.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "request failed: {e}"),
            ClientError::DeadlineElapsed => write!(f, "overall deadline elapsed"),
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry/backoff policy for [`request`].
#[derive(Debug, Clone)]
pub struct RequestOpts {
    /// Total attempts (first try + retries).
    pub attempts: u32,
    /// Base backoff; attempt `k` waits `base * 2^k`, jittered ±50%.
    pub base_backoff: Duration,
    /// Overall deadline across all attempts and backoffs.
    pub overall_deadline: Duration,
    /// Per-connection I/O timeout.
    pub io_timeout: Duration,
}

impl Default for RequestOpts {
    fn default() -> Self {
        RequestOpts {
            attempts: 4,
            base_backoff: Duration::from_millis(20),
            overall_deadline: Duration::from_secs(30),
            io_timeout: Duration::from_secs(15),
        }
    }
}

/// Sends one request line and returns the response line, retrying
/// connect/I-O failures with jittered exponential backoff under an
/// overall deadline.
///
/// # Errors
///
/// [`ClientError::DeadlineElapsed`] once the overall deadline passes,
/// otherwise the last attempt's failure.
pub fn request(listener: &Listener, line: &str, opts: &RequestOpts) -> Result<String, ClientError> {
    let start = Instant::now();
    let mut jitter = JitterRng::new(line);
    let mut last: Option<ClientError> = None;
    for attempt in 0..opts.attempts.max(1) {
        if start.elapsed() >= opts.overall_deadline {
            return Err(ClientError::DeadlineElapsed);
        }
        if attempt > 0 {
            let backoff = opts.base_backoff.saturating_mul(1 << (attempt - 1).min(16));
            let waited = jitter.jittered(backoff);
            let remaining = opts.overall_deadline.saturating_sub(start.elapsed());
            std::thread::sleep(waited.min(remaining));
            if start.elapsed() >= opts.overall_deadline {
                return Err(ClientError::DeadlineElapsed);
            }
        }
        match Client::connect_with_timeout(listener, opts.io_timeout) {
            Ok(mut client) => match client.send(line) {
                Ok(resp) => return Ok(resp),
                Err(e) => last = Some(e),
            },
            Err(e) => last = Some(ClientError::Io(e)),
        }
    }
    Err(last.unwrap_or(ClientError::DeadlineElapsed))
}

/// A persistent connection to the daemon: many requests pipelined over
/// one stream (the throughput benchmark's workhorse). No retry — a
/// failure surfaces to the caller.
pub struct Client {
    writer: BufWriter<Box<dyn Write + Send>>,
    reader: BufReader<Box<dyn Read + Send>>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the socket connect failure.
    pub fn connect(listener: &Listener) -> std::io::Result<Self> {
        Self::connect_with_timeout(listener, Duration::from_secs(15))
    }

    /// [`Client::connect`] with an explicit per-operation I/O timeout.
    ///
    /// # Errors
    ///
    /// Propagates the socket connect failure.
    pub fn connect_with_timeout(listener: &Listener, timeout: Duration) -> std::io::Result<Self> {
        match listener {
            Listener::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                let reader = stream.try_clone()?;
                Ok(Client {
                    writer: BufWriter::new(Box::new(stream)),
                    reader: BufReader::new(Box::new(reader)),
                })
            }
            Listener::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                stream.set_nodelay(true)?;
                let reader = stream.try_clone()?;
                Ok(Client {
                    writer: BufWriter::new(Box::new(stream)),
                    reader: BufReader::new(Box::new(reader)),
                })
            }
        }
    }

    /// Sends one request line, waits for its response line.
    ///
    /// # Errors
    ///
    /// I/O failures and server-side hangups.
    pub fn send(&mut self, line: &str) -> Result<String, ClientError> {
        self.write_line(line)?;
        self.read_line()
    }

    /// Writes a request line without waiting (pipelining); pair with
    /// [`Client::read_line`].
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn write_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.queue_line(line)?;
        self.flush()
    }

    /// Buffers a request line without flushing: deep pipelining pays one
    /// syscall per buffer instead of one per frame. Call
    /// [`Client::flush`] before waiting on responses, or the tail of the
    /// batch never reaches the daemon.
    ///
    /// # Errors
    ///
    /// Write failures (a full buffer flushes implicitly).
    pub fn queue_line(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}").map_err(ClientError::Io)
    }

    /// Flushes queued request lines to the socket.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush().map_err(ClientError::Io)
    }

    /// Reads the next response line.
    ///
    /// # Errors
    ///
    /// Read failures, or [`ClientError::ConnectionClosed`] on EOF.
    pub fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(ClientError::Io)?;
        if n == 0 {
            return Err(ClientError::ConnectionClosed);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

/// Small deterministic-per-key jitter source (no clock, no global RNG):
/// good enough to decorrelate retry storms.
struct JitterRng {
    state: u64,
}

impl JitterRng {
    fn new(key: &str) -> Self {
        // FNV-1a over the request text + this process id: different
        // clients and different requests back off at different phases.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes().chain(std::process::id().to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        JitterRng { state: h.max(1) }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// `d` scaled by a factor uniform in [0.5, 1.5).
    fn jittered(&mut self, d: Duration) -> Duration {
        let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        d.mul_f64(0.5 + unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_within_band() {
        let mut j = JitterRng::new("key");
        let base = Duration::from_millis(100);
        for _ in 0..100 {
            let d = j.jittered(base);
            assert!(d >= base / 2 && d < base * 3 / 2, "{d:?}");
        }
    }

    #[test]
    fn request_fails_cleanly_when_no_daemon_listens() {
        let listener = Listener::Unix(std::env::temp_dir().join("ftbar-no-such-daemon.sock"));
        let opts = RequestOpts {
            attempts: 2,
            base_backoff: Duration::from_millis(1),
            overall_deadline: Duration::from_millis(200),
            io_timeout: Duration::from_millis(50),
        };
        let err = request(&listener, "{\"op\": \"status\"}", &opts).unwrap_err();
        assert!(matches!(
            err,
            ClientError::Io(_) | ClientError::DeadlineElapsed
        ));
    }
}
