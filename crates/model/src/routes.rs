//! Cached multi-route tables: per processor pair, the primary shortest
//! route plus vertex-disjoint alternatives.
//!
//! The architecture's own [`Arch::route`] is a single shortest route per
//! ordered pair — enough for latency, not for fault tolerance: on
//! store-and-forward topologies every comm booked along one route dies with
//! any of the route's processors. A [`RouteTable`] extends each pair to a
//! small set of candidate routes whose *interiors* are pairwise disjoint
//! (computed by [`ftbar_graph::vertex_disjoint_paths`]), so a scheduler can
//! book redundant transfers that no `Npf`-subset of processor failures can
//! sever simultaneously.
//!
//! The table is built once per [`Problem`](crate::Problem) (route count
//! capped at `Npf + 1` per pair) and is deterministic: route `0` of every
//! pair is exactly the architecture's primary route, alternatives follow
//! shortest-first.

use serde::{Deserialize, Serialize};

use crate::arch::{Arch, Hop};
use crate::ids::ProcId;

/// One candidate route: a chain of hops from a source processor to a
/// destination processor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    hops: Vec<Hop>,
}

impl Route {
    /// The hops of the route, in traversal order (never empty).
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of links traversed (the hop cost).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The intermediate (store-and-forward) processors of the route, in
    /// traversal order — excludes both endpoints.
    pub fn intermediates(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.hops[1..].iter().map(|h| h.from)
    }

    /// The processors whose fail-silent death silences a transfer on this
    /// route: the source plus every intermediate (the destination is the
    /// consumer itself and is accounted separately).
    pub fn blockers(&self) -> impl Iterator<Item = ProcId> + '_ {
        std::iter::once(self.hops[0].from).chain(self.intermediates())
    }
}

/// All-pairs candidate route sets. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteTable {
    /// `routes[src][dst]`: candidate routes, primary first (empty iff
    /// `src == dst`).
    routes: Vec<Vec<Vec<Route>>>,
    /// The per-pair route cap the table was built with.
    max_routes: usize,
}

impl RouteTable {
    /// Builds the table for `arch`, keeping up to `max_routes` pairwise
    /// vertex-disjoint routes per ordered pair. The architecture's primary
    /// route is always route 0; when the disjoint set does not happen to
    /// contain it (max-flow may settle on a different decomposition), it is
    /// prepended *in addition* — evicting a disjoint alternative to make
    /// room for it could leave every cached route sharing an interior
    /// processor, defeating coverage the topology actually supports.
    pub fn build(arch: &Arch, max_routes: usize) -> Self {
        let n = arch.proc_count();
        let max_routes = max_routes.max(1);
        // Same adjacency the architecture's own BFS routing uses, so the
        // shortest flow path and the primary route usually coincide.
        let adj = arch.link_adjacency();
        let mut routes: Vec<Vec<Vec<Route>>> = vec![vec![Vec::new(); n]; n];
        for (src, row) in routes.iter_mut().enumerate() {
            for (dst, cell) in row.iter_mut().enumerate() {
                if src == dst {
                    continue;
                }
                let primary = Route {
                    hops: arch
                        .route(ProcId::from_index(src), ProcId::from_index(dst))
                        .to_vec(),
                };
                if max_routes == 1 {
                    // A single candidate per pair is by definition the
                    // primary route; skip the max-flow machinery entirely
                    // (the npf = 0 case).
                    *cell = vec![primary];
                    continue;
                }
                let paths = ftbar_graph::vertex_disjoint_paths(n, &adj, src, dst, max_routes);
                let mut set: Vec<Route> = paths
                    .into_iter()
                    .map(|p| {
                        let mut from = ProcId::from_index(src);
                        let hops = p
                            .into_iter()
                            .map(|(edge, node)| {
                                let to = ProcId::from_index(node);
                                let hop = Hop {
                                    link: crate::ids::LinkId::from_index(edge),
                                    from,
                                    to,
                                };
                                from = to;
                                hop
                            })
                            .collect();
                        Route { hops }
                    })
                    .collect();
                if let Some(pos) = set.iter().position(|r| *r == primary) {
                    set.swap(0, pos);
                    // Keep the alternatives shortest-first after the swap.
                    set[1..].sort_by_key(|r| r.hop_count());
                } else {
                    set.insert(0, primary);
                }
                *cell = set;
            }
        }
        RouteTable { routes, max_routes }
    }

    /// The candidate routes from `src` to `dst`, primary route first.
    /// Empty iff `src == dst`; holds up to `max_routes` pairwise disjoint
    /// routes, plus one when the primary is not part of the disjoint set.
    pub fn all(&self, src: ProcId, dst: ProcId) -> &[Route] {
        &self.routes[src.index()][dst.index()]
    }

    /// The per-pair disjoint-route cap the table was built with.
    pub fn max_routes(&self) -> usize {
        self.max_routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> Arch {
        let mut b = Arch::builder("ring4");
        let ps: Vec<_> = (0..4).map(|i| b.proc(format!("P{i}"))).collect();
        for i in 0..4 {
            b.link(format!("L{i}"), &[ps[i], ps[(i + 1) % 4]]);
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_pairs_have_two_disjoint_routes() {
        let arch = ring4();
        let table = RouteTable::build(&arch, 2);
        for src in arch.procs() {
            for dst in arch.procs() {
                if src == dst {
                    assert!(table.all(src, dst).is_empty());
                    continue;
                }
                let set = table.all(src, dst);
                assert_eq!(set.len(), 2, "{src} -> {dst}");
                assert_eq!(set[0].hops(), arch.route(src, dst), "primary first");
                let a: Vec<_> = set[0].intermediates().collect();
                let b: Vec<_> = set[1].intermediates().collect();
                assert!(a.iter().all(|p| !b.contains(p)), "disjoint interiors");
            }
        }
    }

    #[test]
    fn blockers_include_source_and_intermediates() {
        let arch = ring4();
        let table = RouteTable::build(&arch, 2);
        let p0 = ProcId(0);
        let p2 = ProcId(2);
        for route in table.all(p0, p2) {
            let blockers: Vec<_> = route.blockers().collect();
            assert_eq!(blockers[0], p0);
            assert_eq!(blockers.len(), route.hop_count());
            assert!(!blockers.contains(&p2));
        }
    }

    #[test]
    fn fully_connected_keeps_direct_primary() {
        let mut b = Arch::builder("tri");
        let p1 = b.proc("P1");
        let p2 = b.proc("P2");
        let p3 = b.proc("P3");
        b.link("L12", &[p1, p2]);
        b.link("L13", &[p1, p3]);
        b.link("L23", &[p2, p3]);
        let arch = b.build().unwrap();
        let table = RouteTable::build(&arch, 2);
        let set = table.all(p1, p3);
        assert_eq!(set[0].hop_count(), 1);
        assert_eq!(set[0].hops(), arch.route(p1, p3));
        // The alternative detours through P2.
        assert_eq!(set.len(), 2);
        assert_eq!(set[1].intermediates().collect::<Vec<_>>(), vec![p2]);
    }

    #[test]
    fn line_topology_has_single_routes() {
        let mut b = Arch::builder("line");
        let p1 = b.proc("P1");
        let p2 = b.proc("P2");
        let p3 = b.proc("P3");
        b.link("L12", &[p1, p2]);
        b.link("L23", &[p2, p3]);
        let arch = b.build().unwrap();
        let table = RouteTable::build(&arch, 3);
        assert_eq!(table.all(p1, p3).len(), 1);
        assert_eq!(table.all(p1, p2).len(), 1);
        assert_eq!(table.max_routes(), 3);
    }

    #[test]
    fn primary_outside_the_disjoint_set_does_not_evict_alternatives() {
        // s-a, a-b, b-t, a-c, c-t, s-d, d-b: the BFS primary s -> t is
        // s-a-b-t, but the max-flow decomposition settles on the disjoint
        // pair {s-a-c-t, s-d-b-t}, which does not contain the primary.
        // The table must keep *both* disjoint routes (each single interior
        // failure leaves a survivor) and still expose the primary first.
        let mut bld = Arch::builder("cancel");
        let s = bld.proc("S");
        let a = bld.proc("A");
        let b = bld.proc("B");
        let c = bld.proc("C");
        let d = bld.proc("D");
        let t = bld.proc("T");
        bld.link("L0", &[s, a]);
        bld.link("L1", &[a, b]);
        bld.link("L2", &[b, t]);
        bld.link("L3", &[a, c]);
        bld.link("L4", &[c, t]);
        bld.link("L5", &[s, d]);
        bld.link("L6", &[d, b]);
        let arch = bld.build().unwrap();
        let table = RouteTable::build(&arch, 2);
        let set = table.all(s, t);
        assert_eq!(set[0].hops(), arch.route(s, t), "primary stays first");
        // Every interior processor must leave at least one route alive.
        for fail in [a, b, c, d] {
            assert!(
                set.iter().any(|r| r.blockers().all(|p| p != fail)),
                "failure of {fail} blocks every cached route"
            );
        }
    }

    #[test]
    fn single_route_tables_skip_the_flow_machinery() {
        let arch = ring4();
        let table = RouteTable::build(&arch, 1);
        for src in arch.procs() {
            for dst in arch.procs() {
                if src != dst {
                    let set = table.all(src, dst);
                    assert_eq!(set.len(), 1);
                    assert_eq!(set[0].hops(), arch.route(src, dst));
                }
            }
        }
    }

    #[test]
    fn bus_offers_detour_routes() {
        let mut b = Arch::builder("bus");
        let ps: Vec<_> = (0..3).map(|i| b.proc(format!("P{i}"))).collect();
        b.link("BUS", &ps);
        let arch = b.build().unwrap();
        let table = RouteTable::build(&arch, 2);
        let set = table.all(ps[0], ps[1]);
        assert_eq!(set[0].hop_count(), 1);
        // A second, vertex-disjoint route exists via the third processor
        // (useless against link failures, but interiors are disjoint).
        assert_eq!(set.len(), 2);
    }
}
