//! The paper's running example (Figure 2, Tables 1 and 2).
//!
//! Nine operations `I, A..G, O` on three processors `P1..P3` connected by
//! three point-to-point links, with the exact heterogeneous time tables of
//! the paper, `Npf = 1` and `Rtc = 16`.

use crate::alg::Alg;
use crate::arch::Arch;
use crate::exec::{CommTable, ExecTable};
use crate::problem::Problem;
use crate::time::Time;

/// Builds the paper's running example problem.
///
/// * Algorithm (Fig. 2a): `I → A`, `A → {B, C, D, E}`, `{B, C} → F`,
///   `{D, E, F} → G`, `G → O`;
/// * Architecture (Fig. 2b): `P1, P2, P3` fully connected by point-to-point
///   links `L1.2, L1.3, L2.3`;
/// * `Exe`/`Dis` for operations (Table 1) — note `⟨I, P3⟩ = ∞` and
///   `⟨O, P2⟩ = ∞`;
/// * `Exe` for communications (Table 2), heterogeneous: `L1.2` is slower
///   than `L1.3`/`L2.3`;
/// * `Rtc = 16`, `Npf = 1`.
///
/// # Example
///
/// ```
/// use ftbar_model::paper_example;
///
/// let p = paper_example();
/// let i = p.alg().op_by_name("I").unwrap();
/// let p3 = p.arch().proc_by_name("P3").unwrap();
/// assert!(p.exec().get(i, p3).is_none()); // Dis: I cannot run on P3
/// ```
pub fn paper_example() -> Problem {
    let mut b = Alg::builder("paper_fig2");
    let i = b.extio("I");
    let a = b.comp("A");
    let bb = b.comp("B");
    let c = b.comp("C");
    let d = b.comp("D");
    let e = b.comp("E");
    let f = b.comp("F");
    let g = b.comp("G");
    let o = b.extio("O");
    // Dependency order matches Table 2's column order.
    let deps = [
        b.dep(i, a),  // I . A
        b.dep(a, bb), // A . B
        b.dep(a, c),  // A . C
        b.dep(a, d),  // A . D
        b.dep(a, e),  // A . E
        b.dep(bb, f), // B . F
        b.dep(c, f),  // C . F
        b.dep(d, g),  // D . G
        b.dep(e, g),  // E . G
        b.dep(f, g),  // F . G
        b.dep(g, o),  // G . O
    ];
    let alg = b.build().expect("paper algorithm graph is valid");

    let mut b = Arch::builder("paper_arc");
    let p1 = b.proc("P1");
    let p2 = b.proc("P2");
    let p3 = b.proc("P3");
    let l12 = b.link("L1.2", &[p1, p2]);
    let l23 = b.link("L2.3", &[p2, p3]);
    let l13 = b.link("L1.3", &[p1, p3]);
    let arch = b.build().expect("paper architecture is valid");

    // Table 1: rows P1, P2, P3; columns I A B C D E F G O; None = ∞.
    let ops = [i, a, bb, c, d, e, f, g, o];
    let table1: [[Option<f64>; 9]; 3] = [
        [
            Some(1.0),
            Some(2.0),
            Some(3.0),
            Some(2.0),
            Some(3.0),
            Some(1.0),
            Some(2.0),
            Some(1.4),
            Some(1.4),
        ],
        [
            Some(1.3),
            Some(1.5),
            Some(1.0),
            Some(3.0),
            Some(1.7),
            Some(1.2),
            Some(2.5),
            Some(1.0),
            None,
        ],
        [
            None,
            Some(1.0),
            Some(1.5),
            Some(1.0),
            Some(3.0),
            Some(2.0),
            Some(1.0),
            Some(1.5),
            Some(1.8),
        ],
    ];
    let mut exec = ExecTable::new(alg.op_count(), arch.proc_count());
    for (pi, proc) in [p1, p2, p3].into_iter().enumerate() {
        for (oi, &op) in ops.iter().enumerate() {
            if let Some(t) = table1[pi][oi] {
                exec.set(op, proc, Time::from_units(t));
            }
        }
    }

    // Table 2: rows L1.2, L2.3, L1.3; columns follow `deps` order.
    let table2: [[f64; 11]; 3] = [
        [1.75, 1.0, 1.0, 1.5, 1.0, 1.0, 1.3, 1.9, 1.3, 1.0, 1.1],
        [1.25, 0.5, 0.5, 1.0, 0.5, 0.5, 0.8, 1.4, 0.8, 0.5, 0.6],
        [1.25, 0.5, 0.5, 1.0, 0.5, 0.5, 0.8, 1.4, 0.8, 0.5, 0.6],
    ];
    let mut comm = CommTable::new(alg.dep_count(), arch.link_count());
    for (li, link) in [l12, l23, l13].into_iter().enumerate() {
        for (di, &dep) in deps.iter().enumerate() {
            comm.set(dep, link, Time::from_units(table2[li][di]));
        }
    }

    let mut b = Problem::builder(alg, arch, exec, comm);
    b.rtc(Time::from_units(16.0)).npf(1);
    b.build().expect("paper example is a valid problem")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LinkId, ProcId};

    #[test]
    fn dimensions_match_the_paper() {
        let p = paper_example();
        assert_eq!(p.alg().op_count(), 9);
        assert_eq!(p.alg().dep_count(), 11);
        assert_eq!(p.arch().proc_count(), 3);
        assert_eq!(p.arch().link_count(), 3);
        assert!(p.arch().is_fully_connected());
        assert_eq!(p.npf(), 1);
        assert_eq!(p.rtc(), Some(Time::from_units(16.0)));
    }

    #[test]
    fn dis_constraints_match_table1() {
        let p = paper_example();
        let i = p.alg().op_by_name("I").unwrap();
        let o = p.alg().op_by_name("O").unwrap();
        let p2 = p.arch().proc_by_name("P2").unwrap();
        let p3 = p.arch().proc_by_name("P3").unwrap();
        assert!(p.exec().get(i, p3).is_none());
        assert!(p.exec().get(o, p2).is_none());
        // Every op still has >= 2 allowed processors (Npf + 1 = 2).
        for op in p.alg().ops() {
            assert!(p.exec().allowed_procs(op).count() >= 2);
        }
    }

    #[test]
    fn spot_check_table1_values() {
        let p = paper_example();
        let g = p.alg().op_by_name("G").unwrap();
        assert_eq!(
            p.exec().get(g, ProcId(0)),
            Some(Time::from_units(1.4)),
            "G on P1"
        );
        assert_eq!(p.exec().get(g, ProcId(1)), Some(Time::from_units(1.0)));
        assert_eq!(p.exec().get(g, ProcId(2)), Some(Time::from_units(1.5)));
    }

    #[test]
    fn spot_check_table2_values() {
        let p = paper_example();
        let ia = p.alg().dep_by_names("I", "A").unwrap();
        let l12 = p.arch().link_by_name("L1.2").unwrap();
        let l13 = p.arch().link_by_name("L1.3").unwrap();
        assert_eq!(p.comm().get(ia, l12), Some(Time::from_units(1.75)));
        assert_eq!(p.comm().get(ia, l13), Some(Time::from_units(1.25)));
        let go = p.alg().dep_by_names("G", "O").unwrap();
        assert_eq!(p.comm().get(go, LinkId(0)), Some(Time::from_units(1.1)));
        assert_eq!(p.comm().get(go, LinkId(1)), Some(Time::from_units(0.6)));
    }

    #[test]
    fn graph_shape_matches_fig2() {
        let p = paper_example();
        let alg = p.alg();
        let a = alg.op_by_name("A").unwrap();
        let g = alg.op_by_name("G").unwrap();
        assert_eq!(alg.succs(a).count(), 4);
        assert_eq!(alg.preds(g).count(), 3);
        assert_eq!(alg.entry_ops().len(), 1);
        assert_eq!(alg.exit_ops().len(), 1);
    }
}
