//! Model construction and validation errors.

use core::fmt;

use ftbar_graph::CycleError;

/// Error raised while building or validating a model
/// ([`crate::Alg`], [`crate::Arch`], [`crate::Problem`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// Two entities of the same kind share a name.
    DuplicateName {
        /// The offending name.
        name: String,
        /// What kind of entity (`"operation"`, `"processor"`, …).
        kind: &'static str,
    },
    /// A name was referenced but never declared.
    UnknownName {
        /// The unresolved name.
        name: String,
        /// What kind of entity was expected.
        kind: &'static str,
    },
    /// An entity name is empty or contains separators.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// The intra-iteration algorithm graph has a cycle.
    AlgCycle(CycleError),
    /// The algorithm graph has no operation.
    EmptyAlg,
    /// The architecture has no processor.
    EmptyArch,
    /// A link must connect at least two distinct processors.
    DegenerateLink {
        /// Name of the offending link.
        link: String,
    },
    /// Two processors have no communication route between them.
    Disconnected {
        /// One processor name.
        a: String,
        /// The other processor name.
        b: String,
    },
    /// An `extio` operation has both predecessors and successors, so it is
    /// neither an input nor an output interface.
    ExtioNotInterface {
        /// Name of the offending operation.
        op: String,
    },
    /// A table's dimensions do not match the algorithm/architecture.
    DimensionMismatch {
        /// Human description of the mismatch.
        what: &'static str,
    },
    /// An operation cannot be replicated `npf + 1` times because too few
    /// processors may execute it.
    NotEnoughProcessors {
        /// Name of the operation.
        op: String,
        /// Required number of distinct processors (`npf + 1`).
        needed: usize,
        /// Number of processors allowed by the `Dis` constraints.
        available: usize,
    },
    /// `npf` must be smaller than the processor count.
    NpfTooLarge {
        /// Requested number of tolerated failures.
        npf: u32,
        /// Processors in the architecture.
        procs: usize,
    },
    /// A dependency has no link that can carry it along some route.
    UnroutableDependency {
        /// Name of the dependency (`"A -> B"`).
        dep: String,
        /// Name of the link with no transmission time.
        link: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName { name, kind } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            ModelError::UnknownName { name, kind } => {
                write!(f, "unknown {kind} `{name}`")
            }
            ModelError::InvalidName { name } => write!(f, "invalid name `{name}`"),
            ModelError::AlgCycle(c) => write!(f, "algorithm graph is cyclic: {c}"),
            ModelError::EmptyAlg => write!(f, "algorithm graph has no operation"),
            ModelError::EmptyArch => write!(f, "architecture has no processor"),
            ModelError::DegenerateLink { link } => {
                write!(
                    f,
                    "link `{link}` must connect at least two distinct processors"
                )
            }
            ModelError::Disconnected { a, b } => {
                write!(
                    f,
                    "no communication route between processors `{a}` and `{b}`"
                )
            }
            ModelError::ExtioNotInterface { op } => write!(
                f,
                "extio operation `{op}` must be a pure input (no predecessors) \
                 or a pure output (no successors)"
            ),
            ModelError::DimensionMismatch { what } => {
                write!(f, "table dimensions do not match the model: {what}")
            }
            ModelError::NotEnoughProcessors {
                op,
                needed,
                available,
            } => write!(
                f,
                "operation `{op}` needs {needed} distinct processors for replication \
                 but only {available} are allowed by the distribution constraints"
            ),
            ModelError::NpfTooLarge { npf, procs } => write!(
                f,
                "cannot tolerate {npf} failures with only {procs} processors"
            ),
            ModelError::UnroutableDependency { dep, link } => write!(
                f,
                "dependency `{dep}` has no transmission time on link `{link}` \
                 which lies on a required route"
            ),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::AlgCycle(c) => Some(c),
            _ => None,
        }
    }
}

impl From<CycleError> for ModelError {
    fn from(c: CycleError) -> Self {
        ModelError::AlgCycle(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::NotEnoughProcessors {
            op: "A".into(),
            needed: 2,
            available: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("A") && msg.contains("2") && msg.contains("1"));

        let e = ModelError::Disconnected {
            a: "P1".into(),
            b: "P9".into(),
        };
        assert!(e.to_string().contains("P1"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<T: std::error::Error + Send + Sync>() {}
        assert_err::<ModelError>();
    }
}
