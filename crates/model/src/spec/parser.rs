//! Recursive-descent parser for the spec language.

use core::fmt;

use crate::alg::{Alg, OpKind};
use crate::arch::Arch;
use crate::error::ModelError;
use crate::exec::{CommTable, ExecTable};
use crate::ids::{LinkId, OpId, ProcId};
use crate::problem::Problem;
use crate::time::Time;

use super::lexer::{lex, LexError, Token, TokenKind};

/// Error produced while parsing a problem spec.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// A token did not match the grammar.
    Unexpected {
        /// What the parser found.
        found: String,
        /// What it expected.
        expected: String,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// The spec parsed but the model it describes is invalid.
    Model(ModelError),
    /// A required section is missing.
    MissingSection {
        /// Section keyword (`algorithm`, `architecture`, …).
        section: &'static str,
    },
    /// A section appeared twice.
    DuplicateSection {
        /// Section keyword.
        section: &'static str,
        /// 1-based line.
        line: u32,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                found,
                expected,
                line,
                col,
            } => write!(f, "expected {expected}, found {found} at {line}:{col}"),
            ParseError::Model(e) => write!(f, "invalid model: {e}"),
            ParseError::MissingSection { section } => {
                write!(f, "missing `{section}` section")
            }
            ParseError::DuplicateSection { section, line } => {
                write!(f, "duplicate `{section}` section at line {line}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Lex(e) => Some(e),
            ParseError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError::Model(e)
    }
}

/// Parses a complete problem spec.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors (with position), unknown names,
/// or model validation failures.
///
/// # Example
///
/// ```
/// use ftbar_model::spec::parse_problem;
///
/// let p = parse_problem(
///     "algorithm a { op X; op Y; dep X -> Y; }
///      architecture m { proc P1; proc P2; link L: P1 -- P2; }
///      exec { X on P1 = 1; X on P2 = 1; Y on P1 = 2; Y on P2 = 2; }
///      comm { X -> Y on L = 0.5; }
///      npf 1;",
/// )?;
/// assert_eq!(p.npf(), 1);
/// # Ok::<(), ftbar_model::spec::ParseError>(())
/// ```
pub fn parse_problem(input: &str) -> Result<Problem, ParseError> {
    Parser::new(input)?.problem()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Raw exec entry: (op name, proc name, time or None for `inf`).
type RawExec = (String, String, Option<Time>);
/// Raw comm entry: (src op, dst op, link, time or None for `inf`).
type RawComm = (String, String, String, Option<Time>);

impl Parser {
    fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        let t = self.peek();
        ParseError::Unexpected {
            found: t.kind.to_string(),
            expected: expected.to_owned(),
            line: t.line,
            col: t.col,
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match &self.peek().kind {
            TokenKind::Number(s) => {
                let v: f64 = s.parse().map_err(|_| self.unexpected(what))?;
                self.bump();
                Ok(v)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// A `NUMBER` token converted through `Time`'s checked parser, so
    /// out-of-range literals become parse errors instead of panics.
    fn time_literal(&mut self, what: &str) -> Result<Time, ParseError> {
        match &self.peek().kind {
            TokenKind::Number(s) => {
                let t: Time = s.parse().map_err(|_| self.unexpected(what))?;
                self.bump();
                Ok(t)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// `NUMBER | inf` — `None` encodes `inf`.
    fn time_or_inf(&mut self) -> Result<Option<Time>, ParseError> {
        if self.keyword("inf") {
            return Ok(None);
        }
        match &self.peek().kind {
            TokenKind::Number(s) => {
                let t: Time = s.parse().map_err(|_| self.unexpected("time literal"))?;
                self.bump();
                Ok(Some(t))
            }
            _ => Err(self.unexpected("time literal or `inf`")),
        }
    }

    fn problem(&mut self) -> Result<Problem, ParseError> {
        let mut alg: Option<Alg> = None;
        let mut arch: Option<Arch> = None;
        let mut raw_exec: Option<Vec<RawExec>> = None;
        let mut raw_comm: Option<Vec<RawComm>> = None;
        let mut rtc: Option<Time> = None;
        let mut npf: Option<u32> = None;

        loop {
            let line = self.peek().line;
            if self.peek().kind == TokenKind::Eof {
                break;
            }
            if self.keyword("algorithm") {
                if alg.is_some() {
                    return Err(ParseError::DuplicateSection {
                        section: "algorithm",
                        line,
                    });
                }
                alg = Some(self.algorithm()?);
            } else if self.keyword("architecture") {
                if arch.is_some() {
                    return Err(ParseError::DuplicateSection {
                        section: "architecture",
                        line,
                    });
                }
                arch = Some(self.architecture()?);
            } else if self.keyword("exec") {
                if raw_exec.is_some() {
                    return Err(ParseError::DuplicateSection {
                        section: "exec",
                        line,
                    });
                }
                raw_exec = Some(self.exec_section()?);
            } else if self.keyword("comm") {
                if raw_comm.is_some() {
                    return Err(ParseError::DuplicateSection {
                        section: "comm",
                        line,
                    });
                }
                raw_comm = Some(self.comm_section()?);
            } else if self.keyword("rtc") {
                rtc = Some(self.time_literal("deadline")?);
                self.expect(&TokenKind::Semi, "`;`")?;
            } else if self.keyword("npf") {
                let v = self.number("failure count")?;
                if v.fract() != 0.0 || v < 0.0 {
                    return Err(self.unexpected("non-negative integer"));
                }
                npf = Some(v as u32);
                self.expect(&TokenKind::Semi, "`;`")?;
            } else {
                return Err(
                    self.unexpected("`algorithm`, `architecture`, `exec`, `comm`, `rtc` or `npf`")
                );
            }
        }

        let alg = alg.ok_or(ParseError::MissingSection {
            section: "algorithm",
        })?;
        let arch = arch.ok_or(ParseError::MissingSection {
            section: "architecture",
        })?;
        let raw_exec = raw_exec.ok_or(ParseError::MissingSection { section: "exec" })?;

        let mut exec = ExecTable::new(alg.op_count(), arch.proc_count());
        for (op_name, proc_name, t) in raw_exec {
            let op = lookup_op(&alg, &op_name)?;
            let proc = lookup_proc(&arch, &proc_name)?;
            match t {
                Some(t) => exec.set(op, proc, t),
                None => exec.forbid(op, proc),
            }
        }
        let mut comm = CommTable::new(alg.dep_count(), arch.link_count());
        for (src, dst, link_name, t) in raw_comm.unwrap_or_default() {
            let dep = alg.dep_by_names(&src, &dst).ok_or_else(|| {
                ParseError::Model(ModelError::UnknownName {
                    name: format!("{src} -> {dst}"),
                    kind: "dependency",
                })
            })?;
            let link = lookup_link(&arch, &link_name)?;
            if let Some(t) = t {
                comm.set(dep, link, t);
            }
        }

        let mut b = Problem::builder(alg, arch, exec, comm);
        if let Some(r) = rtc {
            b.rtc(r);
        }
        b.npf(npf.unwrap_or(0));
        Ok(b.build()?)
    }

    fn algorithm(&mut self) -> Result<Alg, ParseError> {
        let name = self.ident("algorithm name")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut b = Alg::builder(name);
        let mut ops: Vec<(String, OpId)> = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBrace {
                self.bump();
                break;
            }
            if self.keyword("op") {
                let name = self.ident("operation name")?;
                let kind = if self.keyword("kind") {
                    let k = self.ident("operation kind")?;
                    match k.as_str() {
                        "comp" => OpKind::Comp,
                        "mem" => OpKind::Mem,
                        "extio" => OpKind::Extio,
                        _ => return Err(self.unexpected("`comp`, `mem` or `extio`")),
                    }
                } else {
                    OpKind::Comp
                };
                let id = b.op(name.clone(), kind);
                ops.push((name, id));
                self.expect(&TokenKind::Semi, "`;`")?;
            } else if self.keyword("dep") {
                let src = self.ident("source operation")?;
                self.expect(&TokenKind::Arrow, "`->`")?;
                let dst = self.ident("destination operation")?;
                let size = if self.keyword("size") {
                    let v = self.number("data size")?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(self.unexpected("positive finite data size"));
                    }
                    v
                } else {
                    1.0
                };
                let find = |n: &str| -> Result<OpId, ParseError> {
                    ops.iter()
                        .find(|(name, _)| name == n)
                        .map(|(_, id)| *id)
                        .ok_or_else(|| {
                            ParseError::Model(ModelError::UnknownName {
                                name: n.to_owned(),
                                kind: "operation",
                            })
                        })
                };
                let s = find(&src)?;
                let d = find(&dst)?;
                b.dep_sized(s, d, size);
                self.expect(&TokenKind::Semi, "`;`")?;
            } else {
                return Err(self.unexpected("`op`, `dep` or `}`"));
            }
        }
        Ok(b.build()?)
    }

    fn architecture(&mut self) -> Result<Arch, ParseError> {
        let name = self.ident("architecture name")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut b = Arch::builder(name);
        let mut procs: Vec<(String, ProcId)> = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBrace {
                self.bump();
                break;
            }
            if self.keyword("proc") {
                let name = self.ident("processor name")?;
                let id = b.proc(name.clone());
                procs.push((name, id));
                self.expect(&TokenKind::Semi, "`;`")?;
            } else if self.keyword("link") {
                let name = self.ident("link name")?;
                self.expect(&TokenKind::Colon, "`:`")?;
                let mut endpoints = Vec::new();
                loop {
                    let pn = self.ident("processor name")?;
                    let id = procs
                        .iter()
                        .find(|(name, _)| *name == pn)
                        .map(|(_, id)| *id)
                        .ok_or_else(|| {
                            ParseError::Model(ModelError::UnknownName {
                                name: pn.clone(),
                                kind: "processor",
                            })
                        })?;
                    endpoints.push(id);
                    if self.peek().kind == TokenKind::DashDash {
                        self.bump();
                    } else {
                        break;
                    }
                }
                b.link(name, &endpoints);
                self.expect(&TokenKind::Semi, "`;`")?;
            } else {
                return Err(self.unexpected("`proc`, `link` or `}`"));
            }
        }
        Ok(b.build()?)
    }

    fn exec_section(&mut self) -> Result<Vec<RawExec>, ParseError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut entries = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBrace {
                self.bump();
                break;
            }
            let op = self.ident("operation name")?;
            if !self.keyword("on") {
                return Err(self.unexpected("`on`"));
            }
            let proc = self.ident("processor name")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            let t = self.time_or_inf()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            entries.push((op, proc, t));
        }
        Ok(entries)
    }

    fn comm_section(&mut self) -> Result<Vec<RawComm>, ParseError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut entries = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBrace {
                self.bump();
                break;
            }
            let src = self.ident("source operation")?;
            self.expect(&TokenKind::Arrow, "`->`")?;
            let dst = self.ident("destination operation")?;
            if !self.keyword("on") {
                return Err(self.unexpected("`on`"));
            }
            let link = self.ident("link name")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            let t = self.time_or_inf()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            entries.push((src, dst, link, t));
        }
        Ok(entries)
    }
}

fn lookup_op(alg: &Alg, name: &str) -> Result<OpId, ParseError> {
    alg.op_by_name(name).ok_or_else(|| {
        ParseError::Model(ModelError::UnknownName {
            name: name.to_owned(),
            kind: "operation",
        })
    })
}

fn lookup_proc(arch: &Arch, name: &str) -> Result<ProcId, ParseError> {
    arch.proc_by_name(name).ok_or_else(|| {
        ParseError::Model(ModelError::UnknownName {
            name: name.to_owned(),
            kind: "processor",
        })
    })
}

fn lookup_link(arch: &Arch, name: &str) -> Result<LinkId, ParseError> {
    arch.link_by_name(name).ok_or_else(|| {
        ParseError::Model(ModelError::UnknownName {
            name: name.to_owned(),
            kind: "link",
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = "
        algorithm a { op X; op Y kind extio; dep X -> Y size 2; }
        architecture m { proc P1; proc P2; link L: P1 -- P2; }
        exec { X on P1 = 1; X on P2 = 1.5; Y on P1 = 2; Y on P2 = inf; }
        comm { X -> Y on L = 0.5; }
        rtc 10; npf 0;
    ";

    #[test]
    fn parses_minimal_spec() {
        let p = parse_problem(MINI).unwrap();
        assert_eq!(p.alg().op_count(), 2);
        assert_eq!(p.arch().proc_count(), 2);
        assert_eq!(p.rtc(), Some(Time::from_units(10.0)));
        let y = p.alg().op_by_name("Y").unwrap();
        assert_eq!(p.alg().op(y).kind(), OpKind::Extio);
        let p2 = p.arch().proc_by_name("P2").unwrap();
        assert!(p.exec().get(y, p2).is_none(), "inf parses as forbidden");
        let d = p.alg().dep_by_names("X", "Y").unwrap();
        assert_eq!(p.alg().dep(d).size(), 2.0);
    }

    #[test]
    fn syntax_error_has_position() {
        let err = parse_problem("algorithm a { op ; }").unwrap_err();
        match err {
            ParseError::Unexpected { line, col, .. } => {
                assert_eq!(line, 1);
                assert!(col > 1);
            }
            other => panic!("expected Unexpected, got {other:?}"),
        }
    }

    #[test]
    fn unknown_names_are_model_errors() {
        let err = parse_problem(
            "algorithm a { op X; dep X -> Z; }
             architecture m { proc P1; }
             exec { X on P1 = 1; }",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ParseError::Model(ModelError::UnknownName { .. })
        ));
    }

    #[test]
    fn missing_sections_reported() {
        let err = parse_problem("architecture m { proc P1; }").unwrap_err();
        assert!(matches!(
            err,
            ParseError::MissingSection {
                section: "algorithm"
            }
        ));
        let err = parse_problem("algorithm a { op X; }").unwrap_err();
        assert!(matches!(
            err,
            ParseError::MissingSection {
                section: "architecture"
            }
        ));
    }

    #[test]
    fn duplicate_sections_rejected() {
        let err = parse_problem(
            "algorithm a { op X; } algorithm b { op Y; }
             architecture m { proc P1; } exec { }",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ParseError::DuplicateSection {
                section: "algorithm",
                ..
            }
        ));
    }

    #[test]
    fn multipoint_link_parses() {
        let p = parse_problem(
            "algorithm a { op X; }
             architecture m { proc P1; proc P2; proc P3; link BUS: P1 -- P2 -- P3; }
             exec { X on P1 = 1; X on P2 = 1; X on P3 = 1; }",
        )
        .unwrap();
        assert_eq!(p.arch().link_count(), 1);
        assert!(!p.arch().link(LinkId(0)).is_point_to_point());
    }

    #[test]
    fn npf_must_be_integer() {
        let err = parse_problem(&format!("{MINI} npf 1.5;")).unwrap_err();
        assert!(matches!(
            err,
            ParseError::DuplicateSection { .. } | ParseError::Unexpected { .. }
        ));
    }

    #[test]
    fn model_validation_errors_surface() {
        // X forbidden everywhere -> NotEnoughProcessors
        let err = parse_problem(
            "algorithm a { op X; }
             architecture m { proc P1; }
             exec { X on P1 = inf; }",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ParseError::Model(ModelError::NotEnoughProcessors { .. })
        ));
    }
}
