//! Pretty-printer: renders a [`Problem`] back to spec text.
//!
//! `parse_problem(print_problem(p))` reconstructs an equivalent problem, and
//! printing is a fixpoint (printing the reparsed problem yields identical
//! text) — both properties are tested.

use std::fmt::Write as _;

use crate::problem::Problem;

/// Renders `problem` as spec-language text.
pub fn print_problem(problem: &Problem) -> String {
    let alg = problem.alg();
    let arch = problem.arch();
    let mut out = String::new();

    let _ = writeln!(out, "algorithm {} {{", alg.name());
    for op in alg.ops() {
        let o = alg.op(op);
        let _ = writeln!(out, "  op {} kind {};", o.name(), o.kind().keyword());
    }
    for dep in alg.deps() {
        let (s, d) = alg.dep_endpoints(dep);
        let size = alg.dep(dep).size();
        if (size - 1.0).abs() < f64::EPSILON {
            let _ = writeln!(out, "  dep {} -> {};", alg.op(s).name(), alg.op(d).name());
        } else {
            let _ = writeln!(
                out,
                "  dep {} -> {} size {};",
                alg.op(s).name(),
                alg.op(d).name(),
                size
            );
        }
    }
    out.push_str("}\n\n");

    let _ = writeln!(out, "architecture {} {{", arch.name());
    for p in arch.procs() {
        let _ = writeln!(out, "  proc {};", arch.proc(p).name());
    }
    for l in arch.links() {
        let link = arch.link(l);
        let eps: Vec<&str> = link
            .endpoints()
            .iter()
            .map(|&p| arch.proc(p).name())
            .collect();
        let _ = writeln!(out, "  link {}: {};", link.name(), eps.join(" -- "));
    }
    out.push_str("}\n\n");

    out.push_str("exec {\n");
    for op in alg.ops() {
        let _ = write!(out, " ");
        for p in arch.procs() {
            match problem.exec().get(op, p) {
                Some(t) => {
                    let _ = write!(
                        out,
                        " {} on {} = {};",
                        alg.op(op).name(),
                        arch.proc(p).name(),
                        t
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        " {} on {} = inf;",
                        alg.op(op).name(),
                        arch.proc(p).name()
                    );
                }
            }
        }
        out.push('\n');
    }
    out.push_str("}\n\n");

    out.push_str("comm {\n");
    for dep in alg.deps() {
        let (s, d) = alg.dep_endpoints(dep);
        let _ = write!(out, " ");
        for l in arch.links() {
            if let Some(t) = problem.comm().get(dep, l) {
                let _ = write!(
                    out,
                    " {} -> {} on {} = {};",
                    alg.op(s).name(),
                    alg.op(d).name(),
                    arch.link(l).name(),
                    t
                );
            }
        }
        out.push('\n');
    }
    out.push_str("}\n\n");

    if let Some(rtc) = problem.rtc() {
        let _ = writeln!(out, "rtc {rtc};");
    }
    let _ = writeln!(out, "npf {};", problem.npf());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::paper_example;
    use crate::spec::parse_problem;

    #[test]
    fn printed_paper_example_contains_key_lines() {
        let text = print_problem(&paper_example());
        assert!(text.contains("op I kind extio;"));
        assert!(text.contains("dep I -> A;"));
        assert!(text.contains("link L1.2: P1 -- P2;"));
        assert!(text.contains("I on P3 = inf;"));
        assert!(text.contains("rtc 16;"));
        assert!(text.contains("npf 1;"));
    }

    #[test]
    fn printing_is_a_parse_fixpoint() {
        let text = print_problem(&paper_example());
        let reparsed = parse_problem(&text).unwrap();
        assert_eq!(print_problem(&reparsed), text);
    }
}
