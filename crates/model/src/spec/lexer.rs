//! Tokenizer for the spec language.

use core::fmt;

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`algorithm`, `P1`, `L1.2`, …). Identifiers may
    /// contain dots after the first character, so the paper's `L1.2` link
    /// names lex as single tokens.
    Ident(String),
    /// Decimal number literal (`16`, `1.75`).
    Number(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// `--`
    DashDash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(s) => write!(f, "number `{s}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::DashDash => write!(f, "`--`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Error produced on an unexpected character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The offending character.
    pub ch: char,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character `{}` at {}:{}",
            self.ch, self.line, self.col
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`; `#` comments run to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let (tl, tc) = (line, col);
        let Some(&c) = chars.peek() else {
            tokens.push(Token {
                kind: TokenKind::Eof,
                line: tl,
                col: tc,
            });
            return Ok(tokens);
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '{' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line: tl,
                    col: tc,
                });
            }
            '}' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line: tl,
                    col: tc,
                });
            }
            ';' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line: tl,
                    col: tc,
                });
            }
            ':' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line: tl,
                    col: tc,
                });
            }
            '=' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    line: tl,
                    col: tc,
                });
            }
            '-' => {
                bump!();
                match chars.peek() {
                    Some('>') => {
                        bump!();
                        tokens.push(Token {
                            kind: TokenKind::Arrow,
                            line: tl,
                            col: tc,
                        });
                    }
                    Some('-') => {
                        bump!();
                        tokens.push(Token {
                            kind: TokenKind::DashDash,
                            line: tl,
                            col: tc,
                        });
                    }
                    _ => {
                        return Err(LexError {
                            ch: '-',
                            line: tl,
                            col: tc,
                        })
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                let mut seen_dot = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        bump!();
                    } else if c == '.' && !seen_dot {
                        seen_dot = true;
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(s),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(LexError {
                    ch: other,
                    line: tl,
                    col: tc,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_words() {
        assert_eq!(
            kinds("op A ; x -> y -- z { } : ="),
            vec![
                TokenKind::Ident("op".into()),
                TokenKind::Ident("A".into()),
                TokenKind::Semi,
                TokenKind::Ident("x".into()),
                TokenKind::Arrow,
                TokenKind::Ident("y".into()),
                TokenKind::DashDash,
                TokenKind::Ident("z".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Colon,
                TokenKind::Eq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_dotted_idents() {
        assert_eq!(
            kinds("1.75 16 L1.2"),
            vec![
                TokenKind::Number("1.75".into()),
                TokenKind::Number("16".into()),
                TokenKind::Ident("L1.2".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a # comment ; -> \n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("ab\n  cd").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_character_is_reported() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!((err.line, err.col), (1, 3));
        assert!(err.to_string().contains("1:3"));
    }

    #[test]
    fn lone_dash_is_an_error() {
        assert!(lex("a - b").is_err());
    }
}
