//! A small textual specification language for scheduling problems.
//!
//! The format plays the role of SynDEx's input files in the paper's
//! toolchain: it describes the algorithm graph, the architecture graph, the
//! time tables (with `inf` for the `Dis` constraints), the real-time
//! constraint and `npf`. Example:
//!
//! ```text
//! # comments run to end of line
//! algorithm fig2 {
//!   op I kind extio;
//!   op A;                 # defaults to comp
//!   dep I -> A size 2.0;
//! }
//! architecture tri {
//!   proc P1; proc P2;
//!   link L12: P1 -- P2;
//! }
//! exec {
//!   I on P1 = 1;   I on P2 = 1.3;
//!   A on P1 = 2;   A on P2 = inf;   # Dis constraint
//! }
//! comm {
//!   I -> A on L12 = 1.75;
//! }
//! rtc 16;
//! npf 1;
//! ```
//!
//! Parse with [`parse_problem`]; render with [`print_problem`] (the two
//! round-trip).

mod lexer;
mod parser;
mod printer;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse_problem, ParseError};
pub use printer::print_problem;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::paper_example;

    #[test]
    fn paper_example_round_trips() {
        let p = paper_example();
        let text = print_problem(&p);
        let p2 = parse_problem(&text).expect("printed spec parses");
        assert_eq!(p2.alg().op_count(), p.alg().op_count());
        assert_eq!(p2.alg().dep_count(), p.alg().dep_count());
        assert_eq!(p2.arch().proc_count(), p.arch().proc_count());
        assert_eq!(p2.arch().link_count(), p.arch().link_count());
        assert_eq!(p2.npf(), p.npf());
        assert_eq!(p2.rtc(), p.rtc());
        // Tables identical entry by entry.
        for op in p.alg().ops() {
            let name = p.alg().op(op).name();
            let op2 = p2.alg().op_by_name(name).unwrap();
            assert_eq!(p.alg().op(op).kind(), p2.alg().op(op2).kind());
            for proc in p.arch().procs() {
                let pname = p.arch().proc(proc).name();
                let proc2 = p2.arch().proc_by_name(pname).unwrap();
                assert_eq!(p.exec().get(op, proc), p2.exec().get(op2, proc2));
            }
        }
        for dep in p.alg().deps() {
            let (s, d) = p.alg().dep_endpoints(dep);
            let dep2 = p2
                .alg()
                .dep_by_names(p.alg().op(s).name(), p.alg().op(d).name())
                .unwrap();
            for link in p.arch().links() {
                let lname = p.arch().link(link).name();
                let link2 = p2.arch().link_by_name(lname).unwrap();
                assert_eq!(p.comm().get(dep, link), p2.comm().get(dep2, link2));
            }
        }
        // And printing again is a fixpoint.
        assert_eq!(print_problem(&p2), text);
    }
}
