//! Typed identifiers for model entities.
//!
//! Each id is a dense index into its owning collection (operations of an
//! [`crate::Alg`], processors/links of an [`crate::Arch`], …). Newtypes keep
//! the scheduler honest about which index space a number lives in
//! (C-NEWTYPE).

use core::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[derive(Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the id as a `usize` index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("index exceeds u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of an operation in an algorithm graph.
    OpId,
    "op"
);
define_id!(
    /// Identifier of a data-dependency (edge) in an algorithm graph.
    DepId,
    "dep"
);
define_id!(
    /// Identifier of a processor in an architecture graph.
    ProcId,
    "proc"
);
define_id!(
    /// Identifier of a communication link in an architecture graph.
    LinkId,
    "link"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        assert_eq!(OpId::from_index(7).index(), 7);
        assert_eq!(ProcId::from_index(0), ProcId(0));
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(OpId(1).to_string(), "op1");
        assert_eq!(DepId(2).to_string(), "dep2");
        assert_eq!(ProcId(3).to_string(), "proc3");
        assert_eq!(LinkId(4).to_string(), "link4");
    }

    #[test]
    fn ordering_by_value() {
        assert!(OpId(1) < OpId(2));
        assert!(LinkId(0) < LinkId(9));
    }
}
