//! Problem models for FTBAR-style fault-tolerant static scheduling.
//!
//! This crate defines everything the schedulers in `ftbar-core` consume
//! (paper §3, "Models"):
//!
//! * [`Time`] — exact fixed-point time units;
//! * [`Alg`] — the algorithm: a cyclically-executed data-flow graph of
//!   operations ([`OpKind::Comp`] / [`OpKind::Mem`] / [`OpKind::Extio`]) and
//!   data-dependencies;
//! * [`Arch`] — the architecture: processors and (point-to-point or
//!   multipoint) communication links, with precomputed shortest routes;
//! * [`RouteTable`] — per processor pair, the primary route plus
//!   vertex-disjoint alternatives (cached on every [`Problem`] for
//!   fault-disjoint comm booking);
//! * [`ExecTable`] / [`CommTable`] — the heterogeneous `Exe` tables, with
//!   `∞` entries encoding the distribution constraints `Dis`;
//! * [`Problem`] — the validated bundle, plus the real-time constraint
//!   `Rtc` and the failure count `Npf`;
//! * [`spec`] — a small textual language for problems (parse and print);
//! * [`paper_example`] — the paper's running example (Fig. 2, Tables 1–2).
//!
//! # Quick start
//!
//! ```
//! use ftbar_model::{Alg, Arch, CommTable, ExecTable, Problem, Time};
//!
//! // Algorithm: sensor -> filter -> actuator.
//! let mut a = Alg::builder("pipeline");
//! let s = a.extio("sensor");
//! let f = a.comp("filter");
//! let act = a.extio("actuator");
//! a.dep(s, f);
//! a.dep(f, act);
//! let alg = a.build()?;
//!
//! // Architecture: two processors, one link.
//! let mut m = Arch::builder("duo");
//! let p1 = m.proc("P1");
//! let p2 = m.proc("P2");
//! m.link("L", &[p1, p2]);
//! let arch = m.build()?;
//!
//! let exec = ExecTable::uniform(alg.op_count(), arch.proc_count(), Time::from_units(1.0));
//! let comm = CommTable::uniform(alg.dep_count(), arch.link_count(), Time::from_units(0.5));
//! let mut b = Problem::builder(alg, arch, exec, comm);
//! b.npf(1).rtc(Time::from_units(20.0));
//! let problem = b.build()?;
//! assert_eq!(problem.replication(), 2);
//! # Ok::<(), ftbar_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alg;
mod arch;
mod error;
mod exec;
mod ids;
mod paper;
mod problem;
mod routes;
pub mod spec;
mod time;

pub use alg::{Alg, AlgBuilder, DataDep, OpKind, Operation};
pub use arch::{Arch, ArchBuilder, Hop, Link, Processor};
pub use error::ModelError;
pub use exec::{CommTable, ExecTable};
pub use ids::{DepId, LinkId, OpId, ProcId};
pub use paper::paper_example;
pub use problem::{Problem, ProblemBuilder};
pub use routes::{Route, RouteTable};
pub use time::{ParseTimeError, Time, TICKS_PER_UNIT};
