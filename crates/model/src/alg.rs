//! The algorithm model: a cyclically-executed data-flow graph (paper §3.2).
//!
//! Vertices are *operations*, edges are *data-dependencies*. The graph is
//! executed once per input event (an *iteration*). Operations are:
//!
//! * [`OpKind::Comp`] — pure computation: outputs depend only on inputs;
//! * [`OpKind::Mem`] — memory: holds a value *between* iterations; its output
//!   precedes its input like a register, so edges **into** a `mem` carry no
//!   intra-iteration precedence (they are the next iteration's state);
//! * [`OpKind::Extio`] — external input/output; sources of the graph are
//!   sensor interfaces, sinks are actuator interfaces.

use ftbar_graph::{topo_order, DiGraph, EdgeId, NodeId};
use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{DepId, OpId};

/// The kind of an operation (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Pure computation; no internal state, no side effect.
    Comp,
    /// Inter-iteration memory (register-like; output precedes input).
    Mem,
    /// External input/output interface (sensor or actuator).
    Extio,
}

impl OpKind {
    /// The keyword used by the spec language for this kind.
    pub fn keyword(self) -> &'static str {
        match self {
            OpKind::Comp => "comp",
            OpKind::Mem => "mem",
            OpKind::Extio => "extio",
        }
    }
}

/// An operation vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    name: String,
    kind: OpKind,
}

impl Operation {
    /// The operation's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation's kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }
}

/// A data-dependency edge between two operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataDep {
    /// Abstract amount of data transmitted; used to derive transmission
    /// times when no explicit per-link table entry exists.
    size: f64,
}

impl DataDep {
    /// Abstract data size (default 1.0).
    pub fn size(&self) -> f64 {
        self.size
    }
}

/// Builder for [`Alg`]. Construct with [`Alg::builder`].
#[derive(Debug, Clone)]
pub struct AlgBuilder {
    name: String,
    graph: DiGraph<Operation, DataDep>,
}

impl AlgBuilder {
    /// Adds an operation; returns its id.
    ///
    /// Name uniqueness is checked at [`AlgBuilder::build`] time.
    pub fn op(&mut self, name: impl Into<String>, kind: OpKind) -> OpId {
        let id = self.graph.add_node(Operation {
            name: name.into(),
            kind,
        });
        OpId(id.0)
    }

    /// Adds a computation operation (shorthand for [`AlgBuilder::op`]).
    pub fn comp(&mut self, name: impl Into<String>) -> OpId {
        self.op(name, OpKind::Comp)
    }

    /// Adds an external I/O operation.
    pub fn extio(&mut self, name: impl Into<String>) -> OpId {
        self.op(name, OpKind::Extio)
    }

    /// Adds a memory operation.
    pub fn mem(&mut self, name: impl Into<String>) -> OpId {
        self.op(name, OpKind::Mem)
    }

    /// Adds a data-dependency with data size 1.
    pub fn dep(&mut self, src: OpId, dst: OpId) -> DepId {
        self.dep_sized(src, dst, 1.0)
    }

    /// Adds a data-dependency with an explicit data size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not finite and positive, or on unknown ids.
    pub fn dep_sized(&mut self, src: OpId, dst: OpId, size: f64) -> DepId {
        assert!(
            size.is_finite() && size > 0.0,
            "dependency size must be positive"
        );
        let id = self
            .graph
            .add_edge(NodeId(src.0), NodeId(dst.0), DataDep { size });
        DepId(id.0)
    }

    /// Validates and freezes the algorithm graph.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyAlg`] if there is no operation;
    /// * [`ModelError::DuplicateName`] / [`ModelError::InvalidName`];
    /// * [`ModelError::AlgCycle`] if the intra-iteration precedence graph
    ///   (all edges except those entering a `mem`) is cyclic;
    /// * [`ModelError::ExtioNotInterface`] if an `extio` has both
    ///   predecessors and successors.
    pub fn build(self) -> Result<Alg, ModelError> {
        if self.graph.node_count() == 0 {
            return Err(ModelError::EmptyAlg);
        }
        let mut seen = std::collections::HashSet::new();
        for v in self.graph.node_ids() {
            let name = self.graph.node(v).name.clone();
            if name.is_empty() || name.chars().any(|c| c.is_whitespace()) {
                return Err(ModelError::InvalidName { name });
            }
            if !seen.insert(name.clone()) {
                return Err(ModelError::DuplicateName {
                    name,
                    kind: "operation",
                });
            }
        }
        // Build the intra-iteration precedence graph and check acyclicity.
        let sched = sched_graph(&self.graph);
        topo_order(&sched)?;
        for v in self.graph.node_ids() {
            let op = self.graph.node(v);
            if op.kind == OpKind::Extio
                && self.graph.in_degree(v) > 0
                && self.graph.out_degree(v) > 0
            {
                return Err(ModelError::ExtioNotInterface {
                    op: op.name.clone(),
                });
            }
        }
        let order = topo_order(&sched).expect("checked above");
        Ok(Alg {
            name: self.name,
            topo: order.into_iter().map(|n| OpId(n.0)).collect(),
            graph: self.graph,
        })
    }
}

/// Projects the full data-flow graph onto intra-iteration precedence:
/// edges into `mem` operations are dropped (they are inter-iteration state
/// updates).
fn sched_graph(g: &DiGraph<Operation, DataDep>) -> DiGraph<(), ()> {
    let mut s: DiGraph<(), ()> = DiGraph::with_capacity(g.node_count(), g.edge_count());
    for _ in g.node_ids() {
        s.add_node(());
    }
    for e in g.edge_refs() {
        if g.node(e.dst).kind != OpKind::Mem {
            s.add_edge(e.src, e.dst, ());
        }
    }
    s
}

/// A validated algorithm graph (immutable).
///
/// # Example
///
/// ```
/// use ftbar_model::{Alg, OpKind};
///
/// let mut b = Alg::builder("sense-compute-act");
/// let i = b.extio("I");
/// let c = b.comp("C");
/// let o = b.extio("O");
/// b.dep(i, c);
/// b.dep(c, o);
/// let alg = b.build()?;
/// assert_eq!(alg.op_count(), 3);
/// assert_eq!(alg.sched_preds(o).count(), 1);
/// # Ok::<(), ftbar_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Alg {
    name: String,
    graph: DiGraph<Operation, DataDep>,
    /// Topological order of the intra-iteration graph (deterministic).
    topo: Vec<OpId>,
}

impl Alg {
    /// Starts building an algorithm graph with the given name.
    pub fn builder(name: impl Into<String>) -> AlgBuilder {
        AlgBuilder {
            name: name.into(),
            graph: DiGraph::new(),
        }
    }

    /// The algorithm's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of data-dependencies.
    pub fn dep_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Iterates over all operation ids in insertion order.
    pub fn ops(&self) -> impl ExactSizeIterator<Item = OpId> + '_ {
        self.graph.node_ids().map(|n| OpId(n.0))
    }

    /// Iterates over all dependency ids in insertion order.
    pub fn deps(&self) -> impl ExactSizeIterator<Item = DepId> + '_ {
        (0..self.graph.edge_count() as u32).map(DepId)
    }

    /// Returns an operation by id.
    pub fn op(&self, id: OpId) -> &Operation {
        self.graph.node(NodeId(id.0))
    }

    /// Returns a dependency by id.
    pub fn dep(&self, id: DepId) -> &DataDep {
        self.graph.edge(EdgeId(id.0))
    }

    /// Returns the `(producer, consumer)` operations of a dependency.
    pub fn dep_endpoints(&self, id: DepId) -> (OpId, OpId) {
        let (s, d) = self.graph.edge_endpoints(EdgeId(id.0));
        (OpId(s.0), OpId(d.0))
    }

    /// Human-readable name of a dependency: `"A -> B"`.
    pub fn dep_name(&self, id: DepId) -> String {
        let (s, d) = self.dep_endpoints(id);
        format!("{} -> {}", self.op(s).name(), self.op(d).name())
    }

    /// Finds an operation by name.
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        self.ops().find(|&o| self.op(o).name() == name)
    }

    /// Finds the dependency between two named operations.
    pub fn dep_by_names(&self, src: &str, dst: &str) -> Option<DepId> {
        let s = self.op_by_name(src)?;
        let d = self.op_by_name(dst)?;
        self.deps().find(|&e| self.dep_endpoints(e) == (s, d))
    }

    /// All dependencies entering `op` (including inter-iteration edges into
    /// a `mem`). Yields `(dep, producer)` pairs.
    pub fn preds(&self, op: OpId) -> impl Iterator<Item = (DepId, OpId)> + '_ {
        self.graph.in_edges(NodeId(op.0)).iter().map(move |&e| {
            let (s, _) = self.graph.edge_endpoints(e);
            (DepId(e.0), OpId(s.0))
        })
    }

    /// All dependencies leaving `op`. Yields `(dep, consumer)` pairs.
    pub fn succs(&self, op: OpId) -> impl Iterator<Item = (DepId, OpId)> + '_ {
        self.graph.out_edges(NodeId(op.0)).iter().map(move |&e| {
            let (_, d) = self.graph.edge_endpoints(e);
            (DepId(e.0), OpId(d.0))
        })
    }

    /// Dependencies entering `op` that constrain it *within* an iteration:
    /// empty when `op` is a `mem` (its inputs are next-iteration state).
    pub fn sched_preds(&self, op: OpId) -> Box<dyn Iterator<Item = (DepId, OpId)> + '_> {
        if self.op(op).kind() == OpKind::Mem {
            Box::new(std::iter::empty())
        } else {
            Box::new(self.preds(op))
        }
    }

    /// Dependencies leaving `op` that constrain the consumer within the
    /// iteration (excludes edges into `mem` operations).
    pub fn sched_succs(&self, op: OpId) -> impl Iterator<Item = (DepId, OpId)> + '_ {
        self.succs(op)
            .filter(move |&(_, d)| self.op(d).kind() != OpKind::Mem)
    }

    /// True if the dependency constrains execution within one iteration.
    pub fn is_sched_dep(&self, dep: DepId) -> bool {
        let (_, dst) = self.dep_endpoints(dep);
        self.op(dst).kind() != OpKind::Mem
    }

    /// A topological order of the intra-iteration precedence graph
    /// (deterministic: smallest id first among ready operations).
    pub fn topo_order(&self) -> &[OpId] {
        &self.topo
    }

    /// Operations with no intra-iteration predecessor, in id order.
    pub fn entry_ops(&self) -> Vec<OpId> {
        self.ops()
            .filter(|&o| self.sched_preds(o).next().is_none())
            .collect()
    }

    /// Operations with no intra-iteration successor, in id order.
    pub fn exit_ops(&self) -> Vec<OpId> {
        self.ops()
            .filter(|&o| self.sched_succs(o).next().is_none())
            .collect()
    }

    /// Borrow of the underlying graph, for generic graph algorithms.
    pub fn graph(&self) -> &DiGraph<Operation, DataDep> {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Alg {
        let mut b = Alg::builder("t");
        let i = b.extio("I");
        let a = b.comp("A");
        let o = b.extio("O");
        b.dep(i, a);
        b.dep_sized(a, o, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_queries() {
        let alg = simple();
        assert_eq!(alg.op_count(), 3);
        assert_eq!(alg.dep_count(), 2);
        let a = alg.op_by_name("A").unwrap();
        assert_eq!(alg.op(a).kind(), OpKind::Comp);
        assert_eq!(alg.preds(a).count(), 1);
        assert_eq!(alg.succs(a).count(), 1);
        let d = alg.dep_by_names("A", "O").unwrap();
        assert_eq!(alg.dep(d).size(), 2.0);
        assert_eq!(alg.dep_name(d), "A -> O");
        assert!(alg.dep_by_names("O", "A").is_none());
    }

    #[test]
    fn topo_order_is_deterministic_and_valid() {
        let alg = simple();
        let order = alg.topo_order();
        assert_eq!(order.len(), 3);
        let pos = |o: OpId| order.iter().position(|&x| x == o).unwrap();
        for d in alg.deps() {
            let (s, t) = alg.dep_endpoints(d);
            assert!(pos(s) < pos(t));
        }
    }

    #[test]
    fn entry_and_exit_ops() {
        let alg = simple();
        let i = alg.op_by_name("I").unwrap();
        let o = alg.op_by_name("O").unwrap();
        assert_eq!(alg.entry_ops(), vec![i]);
        assert_eq!(alg.exit_ops(), vec![o]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = Alg::builder("t");
        b.comp("X");
        b.comp("X");
        assert!(matches!(
            b.build(),
            Err(ModelError::DuplicateName {
                kind: "operation",
                ..
            })
        ));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut b = Alg::builder("t");
        b.comp("has space");
        assert!(matches!(b.build(), Err(ModelError::InvalidName { .. })));
        let mut b = Alg::builder("t");
        b.comp("");
        assert!(matches!(b.build(), Err(ModelError::InvalidName { .. })));
    }

    #[test]
    fn empty_alg_rejected() {
        assert!(matches!(
            Alg::builder("t").build(),
            Err(ModelError::EmptyAlg)
        ));
    }

    #[test]
    fn cycles_rejected() {
        let mut b = Alg::builder("t");
        let a = b.comp("A");
        let c = b.comp("B");
        b.dep(a, c);
        b.dep(c, a);
        assert!(matches!(b.build(), Err(ModelError::AlgCycle(_))));
    }

    #[test]
    fn mem_breaks_cycles() {
        // A -> M (state update), M -> A (current state): legal because the
        // edge into the mem is inter-iteration.
        let mut b = Alg::builder("counter");
        let a = b.comp("A");
        let m = b.mem("M");
        b.dep(a, m);
        b.dep(m, a);
        let alg = b.build().unwrap();
        let m = alg.op_by_name("M").unwrap();
        let a = alg.op_by_name("A").unwrap();
        assert_eq!(alg.sched_preds(m).count(), 0);
        assert_eq!(alg.preds(m).count(), 1);
        assert_eq!(alg.sched_preds(a).count(), 1);
        // The mem is an entry of the iteration, A is the exit.
        assert_eq!(alg.entry_ops(), vec![m]);
        assert!(alg.exit_ops().contains(&a));
    }

    #[test]
    fn extio_must_be_interface() {
        let mut b = Alg::builder("t");
        let a = b.comp("A");
        let x = b.extio("X");
        let c = b.comp("B");
        b.dep(a, x);
        b.dep(x, c);
        assert!(matches!(
            b.build(),
            Err(ModelError::ExtioNotInterface { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_dep_panics() {
        let mut b = Alg::builder("t");
        let a = b.comp("A");
        let c = b.comp("B");
        b.dep_sized(a, c, 0.0);
    }

    #[test]
    fn kind_keywords() {
        assert_eq!(OpKind::Comp.keyword(), "comp");
        assert_eq!(OpKind::Mem.keyword(), "mem");
        assert_eq!(OpKind::Extio.keyword(), "extio");
    }
}
