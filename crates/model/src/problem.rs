//! The complete scheduling problem: `⟨Alg, Arc, Exe, Dis, Rtc, Npf⟩`.

use serde::{Deserialize, Serialize};

use crate::alg::Alg;
use crate::arch::Arch;
use crate::error::ModelError;
use crate::exec::{check_dims, CommTable, ExecTable};
use crate::ids::OpId;
use crate::routes::RouteTable;
use crate::time::Time;

/// A validated scheduling problem (paper §1): algorithm, architecture,
/// execution/communication times with distribution constraints, an optional
/// real-time constraint and the number of fail-silent processor failures to
/// tolerate.
///
/// # Example
///
/// ```
/// use ftbar_model::paper_example;
///
/// let p = paper_example();
/// assert_eq!(p.npf(), 1);
/// assert_eq!(p.rtc().unwrap().to_string(), "16");
/// assert_eq!(p.alg().op_count(), 9);
/// assert_eq!(p.arch().proc_count(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Problem {
    alg: Alg,
    arch: Arch,
    exec: ExecTable,
    comm: CommTable,
    rtc: Option<Time>,
    npf: u32,
    /// Cached per-architecture route sets (primary + disjoint alternatives,
    /// capped at `npf + 1` per pair), built once at validation time.
    routes: RouteTable,
}

/// Builder for [`Problem`]. Construct with [`Problem::builder`].
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    alg: Alg,
    arch: Arch,
    exec: ExecTable,
    comm: CommTable,
    rtc: Option<Time>,
    npf: u32,
}

impl ProblemBuilder {
    /// Sets the real-time constraint (deadline on schedule completion).
    pub fn rtc(&mut self, deadline: Time) -> &mut Self {
        self.rtc = Some(deadline);
        self
    }

    /// Sets the number of fail-silent processor failures to tolerate
    /// (default 0).
    pub fn npf(&mut self, npf: u32) -> &mut Self {
        self.npf = npf;
        self
    }

    /// Validates and freezes the problem.
    ///
    /// # Errors
    ///
    /// * [`ModelError::DimensionMismatch`] if a table does not match the
    ///   models;
    /// * [`ModelError::NpfTooLarge`] if `npf ≥ |procs|`;
    /// * [`ModelError::NotEnoughProcessors`] if some operation is allowed on
    ///   fewer than `npf + 1` processors;
    /// * [`ModelError::UnroutableDependency`] if a dependency has no
    ///   transmission time on a link of a route between two processors that
    ///   may host its endpoints.
    pub fn build(self) -> Result<Problem, ModelError> {
        check_dims(&self.alg, &self.arch, &self.exec, &self.comm)?;
        let needed = self.npf as usize + 1;
        if needed > self.arch.proc_count() {
            return Err(ModelError::NpfTooLarge {
                npf: self.npf,
                procs: self.arch.proc_count(),
            });
        }
        for op in self.alg.ops() {
            let available = self.exec.allowed_procs(op).count();
            if available < needed {
                return Err(ModelError::NotEnoughProcessors {
                    op: self.alg.op(op).name().to_owned(),
                    needed,
                    available,
                });
            }
        }
        // Every dependency must be transmissible over every route between a
        // processor pair that could host (producer, consumer) replicas.
        for dep in self.alg.deps() {
            let (src, dst) = self.alg.dep_endpoints(dep);
            for ps in self.exec.allowed_procs(src) {
                for pd in self.exec.allowed_procs(dst) {
                    if ps == pd {
                        continue;
                    }
                    for hop in self.arch.route(ps, pd) {
                        if self.comm.get(dep, hop.link).is_none() {
                            return Err(ModelError::UnroutableDependency {
                                dep: self.alg.dep_name(dep),
                                link: self.arch.link(hop.link).name().to_owned(),
                            });
                        }
                    }
                }
            }
        }
        let routes = RouteTable::build(&self.arch, needed);
        Ok(Problem {
            alg: self.alg,
            arch: self.arch,
            exec: self.exec,
            comm: self.comm,
            rtc: self.rtc,
            npf: self.npf,
            routes,
        })
    }
}

impl Problem {
    /// Starts building a problem from its four mandatory parts.
    pub fn builder(alg: Alg, arch: Arch, exec: ExecTable, comm: CommTable) -> ProblemBuilder {
        ProblemBuilder {
            alg,
            arch,
            exec,
            comm,
            rtc: None,
            npf: 0,
        }
    }

    /// The algorithm graph.
    pub fn alg(&self) -> &Alg {
        &self.alg
    }

    /// The architecture graph.
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// The execution-time table (with `Dis` constraints as `None`).
    pub fn exec(&self) -> &ExecTable {
        &self.exec
    }

    /// The communication-time table.
    pub fn comm(&self) -> &CommTable {
        &self.comm
    }

    /// The cached candidate-route table: per ordered processor pair, the
    /// architecture's primary route plus up to `npf` vertex-disjoint
    /// alternatives for fault-disjoint comm booking.
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// The real-time constraint, if any.
    pub fn rtc(&self) -> Option<Time> {
        self.rtc
    }

    /// The number of tolerated fail-silent processor failures.
    pub fn npf(&self) -> u32 {
        self.npf
    }

    /// Number of replicas each operation must have (`npf + 1`).
    pub fn replication(&self) -> usize {
        self.npf as usize + 1
    }

    /// Returns the same problem with a different `npf`.
    ///
    /// Used to produce the non-fault-tolerant baseline (`npf = 0`) of the
    /// paper's overhead metric.
    ///
    /// # Errors
    ///
    /// Fails like [`ProblemBuilder::build`] if the new `npf` is infeasible.
    pub fn with_npf(&self, npf: u32) -> Result<Problem, ModelError> {
        let mut b = Problem::builder(
            self.alg.clone(),
            self.arch.clone(),
            self.exec.clone(),
            self.comm.clone(),
        );
        if let Some(r) = self.rtc {
            b.rtc(r);
        }
        b.npf(npf);
        b.build()
    }

    /// Returns the same problem with the execution time of one
    /// already-allowed ⟨operation, processor⟩ entry overwritten.
    ///
    /// This is the timing-tweak fast path: because the entry stays `Some`,
    /// the allowed-processor sets, dependency routability and the cached
    /// [`RouteTable`] are all unchanged, so the full
    /// [`ProblemBuilder::build`] revalidation is skipped.
    ///
    /// # Panics
    ///
    /// Panics if the entry is forbidden (`Dis` `∞`) — overwriting a
    /// forbidden entry would change the allowed sets and must go through
    /// [`ProblemBuilder::build`].
    pub fn with_exec_entry(&self, op: OpId, proc: crate::ids::ProcId, t: Time) -> Problem {
        assert!(
            self.exec.get(op, proc).is_some(),
            "with_exec_entry requires an already-allowed entry"
        );
        let mut p = self.clone();
        p.exec.set(op, proc, t);
        p
    }

    /// Returns the same problem with every present transmission-time entry
    /// of `dep` replaced by `t`.
    ///
    /// Like [`Problem::with_exec_entry`], this skips revalidation: only
    /// entries that are already `Some` are overwritten, so routability is
    /// unchanged and the cached [`RouteTable`] stays valid.
    pub fn with_comm_entries(&self, dep: crate::ids::DepId, t: Time) -> Problem {
        let mut p = self.clone();
        for link in self.arch.links() {
            if p.comm.get(dep, link).is_some() {
                p.comm.set(dep, link, t);
            }
        }
        p
    }

    /// Measured communication-to-computation ratio of the tables:
    /// mean communication entry over mean execution entry.
    pub fn ccr(&self) -> f64 {
        let e = self.exec.mean_units();
        if e == 0.0 {
            0.0
        } else {
            self.comm.mean_units() / e
        }
    }

    /// The entry operations (no intra-iteration predecessor), in id order.
    pub fn entry_ops(&self) -> Vec<OpId> {
        self.alg.entry_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg;
    use crate::arch::Arch;

    fn parts() -> (Alg, Arch) {
        let mut b = Alg::builder("t");
        let a = b.comp("A");
        let c = b.comp("B");
        b.dep(a, c);
        let alg = b.build().unwrap();
        let mut b = Arch::builder("duo");
        let p1 = b.proc("P1");
        let p2 = b.proc("P2");
        b.link("L", &[p1, p2]);
        (alg, b.build().unwrap())
    }

    #[test]
    fn builds_valid_problem() {
        let (alg, arch) = parts();
        let exec = ExecTable::uniform(2, 2, Time::from_units(1.0));
        let comm = CommTable::uniform(1, 1, Time::from_units(0.5));
        let mut b = Problem::builder(alg, arch, exec, comm);
        b.npf(1).rtc(Time::from_units(10.0));
        let p = b.build().unwrap();
        assert_eq!(p.replication(), 2);
        assert_eq!(p.ccr(), 0.5);
        assert_eq!(p.entry_ops().len(), 1);
    }

    #[test]
    fn route_table_is_cached() {
        let (alg, arch) = parts();
        let exec = ExecTable::uniform(2, 2, Time::from_units(1.0));
        let comm = CommTable::uniform(1, 1, Time::from_units(0.5));
        let mut b = Problem::builder(alg, arch, exec, comm);
        b.npf(1);
        let p = b.build().unwrap();
        assert_eq!(p.routes().max_routes(), 2, "npf + 1 routes per pair");
        let duo = p.routes().all(crate::ids::ProcId(0), crate::ids::ProcId(1));
        assert_eq!(duo.len(), 1, "a two-processor duo has one route");
        assert_eq!(
            duo[0].hops(),
            p.arch().route(crate::ids::ProcId(0), crate::ids::ProcId(1))
        );
    }

    #[test]
    fn npf_too_large_rejected() {
        let (alg, arch) = parts();
        let exec = ExecTable::uniform(2, 2, Time::from_units(1.0));
        let comm = CommTable::uniform(1, 1, Time::from_units(0.5));
        let mut b = Problem::builder(alg, arch, exec, comm);
        b.npf(2);
        assert!(matches!(b.build(), Err(ModelError::NpfTooLarge { .. })));
    }

    #[test]
    fn not_enough_processors_rejected() {
        let (alg, arch) = parts();
        let mut exec = ExecTable::uniform(2, 2, Time::from_units(1.0));
        exec.forbid(OpId(0), crate::ids::ProcId(1));
        let comm = CommTable::uniform(1, 1, Time::from_units(0.5));
        let mut b = Problem::builder(alg, arch, exec, comm);
        b.npf(1);
        assert!(matches!(
            b.build(),
            Err(ModelError::NotEnoughProcessors { .. })
        ));
    }

    #[test]
    fn unroutable_dependency_rejected() {
        let (alg, arch) = parts();
        let exec = ExecTable::uniform(2, 2, Time::from_units(1.0));
        let comm = CommTable::new(1, 1); // no entry for the only dep/link
        let b = Problem::builder(alg, arch, exec, comm);
        assert!(matches!(
            b.build(),
            Err(ModelError::UnroutableDependency { .. })
        ));
    }

    #[test]
    fn with_npf_round_trip() {
        let (alg, arch) = parts();
        let exec = ExecTable::uniform(2, 2, Time::from_units(1.0));
        let comm = CommTable::uniform(1, 1, Time::from_units(0.5));
        let mut b = Problem::builder(alg, arch, exec, comm);
        b.npf(1);
        let p = b.build().unwrap();
        let p0 = p.with_npf(0).unwrap();
        assert_eq!(p0.npf(), 0);
        assert_eq!(p0.alg().op_count(), p.alg().op_count());
        assert!(p.with_npf(5).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (alg, arch) = parts();
        let exec = ExecTable::uniform(9, 9, Time::from_units(1.0));
        let comm = CommTable::uniform(1, 1, Time::from_units(0.5));
        assert!(matches!(
            Problem::builder(alg, arch, exec, comm).build(),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }
}
