//! Fixed-point time arithmetic.
//!
//! The paper expresses all durations in abstract "time units" with decimal
//! fractions (e.g. `1.75`, `15.05`). Floating point would make scheduler
//! tie-breaking fragile (and `f64` is not `Ord`), so [`Time`] stores
//! non-negative time as an integer count of **millitime** units
//! (1 time unit = 1000 ticks). All table values in the paper are exactly
//! representable.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};
use core::str::FromStr;

use serde::{Deserialize, Serialize};

/// Number of ticks per paper "time unit".
pub const TICKS_PER_UNIT: u64 = 1000;

/// A non-negative instant or duration, in fixed-point time units.
///
/// `Time` is totally ordered, hashable and exact, which the schedulers rely
/// on for deterministic decisions.
///
/// # Example
///
/// ```
/// use ftbar_model::Time;
///
/// let a = Time::from_units(1.75);
/// let b = Time::from_units(0.25);
/// assert_eq!((a + b).to_string(), "2");
/// assert_eq!((a - b), Time::from_units(1.5));
/// assert!(a > b);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The zero time.
    pub const ZERO: Time = Time(0);

    /// The largest representable time; used as an "unreachable" sentinel by
    /// schedulers (never as a real date).
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw ticks (1/1000 of a time unit).
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Time {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Creates a time from a (non-negative, finite) number of time units,
    /// rounding to the nearest tick.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative, NaN, or too large to represent.
    pub fn from_units(units: f64) -> Time {
        assert!(
            units.is_finite() && units >= 0.0,
            "time must be finite and non-negative, got {units}"
        );
        let ticks = units * TICKS_PER_UNIT as f64;
        assert!(
            ticks <= u64::MAX as f64 / 2.0,
            "time {units} overflows the tick representation"
        );
        Time(ticks.round() as u64)
    }

    /// Returns the value as floating-point time units.
    #[inline]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// True if this is the zero time.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative scale factor, rounding to ticks.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or NaN, or on overflow.
    pub fn scale(self, k: f64) -> Time {
        assert!(k.is_finite() && k >= 0.0, "scale must be non-negative");
        Time::from_units(self.as_units() * k)
    }

    /// Returns the maximum of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the minimum of two times.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;

    /// # Panics
    ///
    /// Panics on underflow (times are non-negative).
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;

    fn mul(self, rhs: u64) -> Time {
        Time(self.0.checked_mul(rhs).expect("time overflow"))
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    /// Formats as decimal time units without trailing zeros: `15.05`, `2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / TICKS_PER_UNIT;
        let frac = self.0 % TICKS_PER_UNIT;
        if frac == 0 {
            write!(f, "{whole}")
        } else {
            let s = format!("{frac:03}");
            write!(f, "{whole}.{}", s.trim_end_matches('0'))
        }
    }
}

/// Error parsing a [`Time`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimeError {
    input: String,
}

impl fmt::Display for ParseTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid time literal `{}`", self.input)
    }
}

impl std::error::Error for ParseTimeError {}

impl FromStr for Time {
    type Err = ParseTimeError;

    /// Parses decimal time units: `"2"`, `"1.75"`, `"0.005"`.
    ///
    /// At most three fractional digits are accepted (the tick resolution).
    fn from_str(s: &str) -> Result<Time, ParseTimeError> {
        let err = || ParseTimeError {
            input: s.to_owned(),
        };
        let (whole_str, frac_str) = match s.split_once('.') {
            Some((w, fr)) => (w, fr),
            None => (s, ""),
        };
        if whole_str.is_empty() && frac_str.is_empty() {
            return Err(err());
        }
        let whole: u64 = if whole_str.is_empty() {
            0
        } else {
            whole_str.parse().map_err(|_| err())?
        };
        if frac_str.len() > 3 || frac_str.chars().any(|c| !c.is_ascii_digit()) {
            return Err(err());
        }
        let mut frac: u64 = 0;
        if !frac_str.is_empty() {
            frac = frac_str.parse().map_err(|_| err())?;
            frac *= 10u64.pow(3 - frac_str.len() as u32);
        }
        whole
            .checked_mul(TICKS_PER_UNIT)
            .and_then(|t| t.checked_add(frac))
            .map(Time)
            .ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_units_round_trips_paper_values() {
        for v in [0.5, 1.0, 1.3, 1.4, 1.75, 1.25, 2.5, 15.05, 10.7, 4.35] {
            assert_eq!(Time::from_units(v).as_units(), v);
        }
    }

    #[test]
    fn display_trims_zeros() {
        assert_eq!(Time::from_units(2.0).to_string(), "2");
        assert_eq!(Time::from_units(15.05).to_string(), "15.05");
        assert_eq!(Time::from_units(0.5).to_string(), "0.5");
        assert_eq!(Time::from_units(0.005).to_string(), "0.005");
        assert_eq!(Time::ZERO.to_string(), "0");
    }

    #[test]
    fn parse_valid() {
        assert_eq!("1.75".parse::<Time>().unwrap(), Time::from_units(1.75));
        assert_eq!("2".parse::<Time>().unwrap(), Time::from_units(2.0));
        assert_eq!(".5".parse::<Time>().unwrap(), Time::from_units(0.5));
        assert_eq!("3.".parse::<Time>().unwrap(), Time::from_units(3.0));
        assert_eq!("0.005".parse::<Time>().unwrap(), Time::from_ticks(5));
    }

    #[test]
    fn parse_invalid() {
        for s in ["", ".", "-1", "1.2345", "abc", "1.x", "1e3"] {
            assert!(s.parse::<Time>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn parse_display_round_trip() {
        for s in ["0", "1", "1.5", "15.05", "0.001", "123.456"] {
            let t: Time = s.parse().unwrap();
            assert_eq!(t.to_string(), s);
        }
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_units(1.5);
        let b = Time::from_units(0.25);
        assert_eq!(a + b, Time::from_units(1.75));
        assert_eq!(a - b, Time::from_units(1.25));
        assert_eq!(a * 3, Time::from_units(4.5));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total, Time::from_units(2.0));
    }

    #[test]
    fn scale() {
        assert_eq!(Time::from_units(2.0).scale(2.5), Time::from_units(5.0));
        assert_eq!(Time::from_units(3.0).scale(0.0), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Time::from_units(1.0) - Time::from_units(2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_units_panic() {
        let _ = Time::from_units(-1.0);
    }

    #[test]
    fn ordering_is_exact() {
        // 0.1 + 0.2 == 0.3 exactly in fixed point — the reason Time exists.
        let sum = Time::from_units(0.1) + Time::from_units(0.2);
        assert_eq!(sum, Time::from_units(0.3));
    }

    #[test]
    fn checked_ops() {
        assert!(Time::MAX.checked_add(Time::from_ticks(1)).is_none());
        assert_eq!(
            Time::from_ticks(5).checked_add(Time::from_ticks(6)),
            Some(Time::from_ticks(11))
        );
    }
}
