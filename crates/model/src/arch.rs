//! The architecture model: processors and communication links (paper §3.3).
//!
//! A processor owns one computation unit plus one communication unit per
//! connected link; communication units execute data transfers (*comms*)
//! with non-blocking send / blocking receive semantics. Links may be
//! point-to-point (two endpoints, the paper's preferred topology) or
//! multipoint buses (more than two endpoints).
//!
//! The architecture also precomputes **routes**: for every ordered pair of
//! distinct processors, the shortest chain of links (by hop count, ties
//! broken by link id) used to carry inter-processor communications,
//! store-and-forward through intermediate processors.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{LinkId, ProcId};

/// A processor vertex.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Processor {
    name: String,
}

impl Processor {
    /// The processor's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A communication link (point-to-point if it has exactly two endpoints,
/// multipoint otherwise).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    name: String,
    endpoints: Vec<ProcId>,
}

impl Link {
    /// The link's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The processors connected by this link (at least two, distinct).
    pub fn endpoints(&self) -> &[ProcId] {
        &self.endpoints
    }

    /// True if the link connects exactly two processors.
    pub fn is_point_to_point(&self) -> bool {
        self.endpoints.len() == 2
    }

    /// True if `p` is an endpoint of this link.
    pub fn connects(&self, p: ProcId) -> bool {
        self.endpoints.contains(&p)
    }
}

/// One hop of a route: traverse `link` from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// Link traversed by this hop.
    pub link: LinkId,
    /// Sending processor of the hop.
    pub from: ProcId,
    /// Receiving processor of the hop.
    pub to: ProcId,
}

/// Builder for [`Arch`]. Construct with [`Arch::builder`].
#[derive(Debug, Clone)]
pub struct ArchBuilder {
    name: String,
    procs: Vec<Processor>,
    links: Vec<Link>,
}

impl ArchBuilder {
    /// Adds a processor; returns its id.
    pub fn proc(&mut self, name: impl Into<String>) -> ProcId {
        let id = ProcId::from_index(self.procs.len());
        self.procs.push(Processor { name: name.into() });
        id
    }

    /// Adds a link connecting the given processors; returns its id.
    ///
    /// Point-to-point links have exactly two endpoints; buses have more.
    pub fn link(&mut self, name: impl Into<String>, endpoints: &[ProcId]) -> LinkId {
        let id = LinkId::from_index(self.links.len());
        self.links.push(Link {
            name: name.into(),
            endpoints: endpoints.to_vec(),
        });
        id
    }

    /// Validates and freezes the architecture, computing all-pairs routes.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyArch`] if there is no processor;
    /// * [`ModelError::DuplicateName`] / [`ModelError::InvalidName`];
    /// * [`ModelError::DegenerateLink`] for links with fewer than two
    ///   distinct endpoints (or out-of-range endpoints);
    /// * [`ModelError::Disconnected`] if some processor pair has no route.
    pub fn build(self) -> Result<Arch, ModelError> {
        if self.procs.is_empty() {
            return Err(ModelError::EmptyArch);
        }
        let mut seen = std::collections::HashSet::new();
        for p in &self.procs {
            if p.name.is_empty() || p.name.chars().any(|c| c.is_whitespace()) {
                return Err(ModelError::InvalidName {
                    name: p.name.clone(),
                });
            }
            if !seen.insert(p.name.clone()) {
                return Err(ModelError::DuplicateName {
                    name: p.name.clone(),
                    kind: "processor",
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for l in &self.links {
            if l.name.is_empty() || l.name.chars().any(|c| c.is_whitespace()) {
                return Err(ModelError::InvalidName {
                    name: l.name.clone(),
                });
            }
            if !seen.insert(l.name.clone()) {
                return Err(ModelError::DuplicateName {
                    name: l.name.clone(),
                    kind: "link",
                });
            }
            let mut uniq: Vec<ProcId> = l.endpoints.clone();
            uniq.sort();
            uniq.dedup();
            if uniq.len() < 2 || uniq.len() != l.endpoints.len() {
                return Err(ModelError::DegenerateLink {
                    link: l.name.clone(),
                });
            }
            for &p in &l.endpoints {
                if p.index() >= self.procs.len() {
                    return Err(ModelError::DegenerateLink {
                        link: l.name.clone(),
                    });
                }
            }
        }
        let routes = compute_routes(&self.procs, &self.links)?;
        Ok(Arch {
            name: self.name,
            procs: self.procs,
            links: self.links,
            routes,
        })
    }
}

/// Adjacency over the processor/link graph as index pairs: for every link,
/// every ordered endpoint pair, in link-id order. Shared by the primary
/// route BFS below and the [`crate::RouteTable`] disjoint-path computation,
/// so both always explore neighbours in the same order (which keeps the
/// shortest flow path aligned with the primary route).
pub(crate) fn link_adjacency(proc_count: usize, links: &[Link]) -> Vec<Vec<(usize, usize)>> {
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); proc_count];
    for (li, l) in links.iter().enumerate() {
        for &a in &l.endpoints {
            for &b in &l.endpoints {
                if a != b {
                    adj[a.index()].push((li, b.index()));
                }
            }
        }
    }
    adj
}

/// All-pairs BFS over the processor/link graph. Deterministic: neighbors
/// are explored in link-id order, endpoint order.
fn compute_routes(procs: &[Processor], links: &[Link]) -> Result<Vec<Vec<Vec<Hop>>>, ModelError> {
    let n = procs.len();
    let adj = link_adjacency(n, links);
    let mut routes: Vec<Vec<Vec<Hop>>> = vec![vec![Vec::new(); n]; n];
    for src in 0..n {
        // BFS from src
        let mut prev: Vec<Option<Hop>> = vec![None; n];
        let mut dist = vec![usize::MAX; n];
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(ProcId::from_index(src));
        while let Some(u) = queue.pop_front() {
            for &(link, v) in &adj[u.index()] {
                let v = ProcId::from_index(v);
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    prev[v.index()] = Some(Hop {
                        link: LinkId::from_index(link),
                        from: u,
                        to: v,
                    });
                    queue.push_back(v);
                }
            }
        }
        for dst in 0..n {
            if dst == src {
                continue;
            }
            if dist[dst] == usize::MAX {
                return Err(ModelError::Disconnected {
                    a: procs[src].name.clone(),
                    b: procs[dst].name.clone(),
                });
            }
            let mut hops = Vec::with_capacity(dist[dst]);
            let mut cur = dst;
            while cur != src {
                let hop = prev[cur].expect("reached node has a predecessor hop");
                hops.push(hop);
                cur = hop.from.index();
            }
            hops.reverse();
            routes[src][dst] = hops;
        }
    }
    Ok(routes)
}

/// A validated architecture graph (immutable).
///
/// # Example
///
/// ```
/// use ftbar_model::Arch;
///
/// let mut b = Arch::builder("tri");
/// let p1 = b.proc("P1");
/// let p2 = b.proc("P2");
/// let p3 = b.proc("P3");
/// b.link("L12", &[p1, p2]);
/// b.link("L13", &[p1, p3]);
/// b.link("L23", &[p2, p3]);
/// let arch = b.build()?;
/// assert_eq!(arch.route(p1, p3).len(), 1);
/// # Ok::<(), ftbar_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Arch {
    name: String,
    procs: Vec<Processor>,
    links: Vec<Link>,
    /// routes[src][dst]: hops of the chosen shortest route (empty iff
    /// src == dst).
    routes: Vec<Vec<Vec<Hop>>>,
}

impl Arch {
    /// Starts building an architecture with the given name.
    pub fn builder(name: impl Into<String>) -> ArchBuilder {
        ArchBuilder {
            name: name.into(),
            procs: Vec::new(),
            links: Vec::new(),
        }
    }

    /// The architecture's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over processor ids.
    pub fn procs(&self) -> impl ExactSizeIterator<Item = ProcId> {
        (0..self.procs.len() as u32).map(ProcId)
    }

    /// Iterates over link ids.
    pub fn links(&self) -> impl ExactSizeIterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Returns a processor by id.
    pub fn proc(&self, id: ProcId) -> &Processor {
        &self.procs[id.index()]
    }

    /// Returns a link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Finds a processor by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.procs().find(|&p| self.proc(p).name() == name)
    }

    /// Finds a link by name.
    pub fn link_by_name(&self, name: &str) -> Option<LinkId> {
        self.links().find(|&l| self.link(l).name() == name)
    }

    /// The precomputed route from `src` to `dst` (empty iff `src == dst`).
    pub fn route(&self, src: ProcId, dst: ProcId) -> &[Hop] {
        &self.routes[src.index()][dst.index()]
    }

    /// True if every route is a single hop (fully connected, the paper's
    /// experimental topology).
    pub fn is_fully_connected(&self) -> bool {
        self.procs().all(|a| {
            self.procs()
                .all(|b| a == b || self.routes[a.index()][b.index()].len() == 1)
        })
    }

    /// Links incident to processor `p`, in id order.
    pub fn links_of(&self, p: ProcId) -> Vec<LinkId> {
        self.links().filter(|&l| self.link(l).connects(p)).collect()
    }

    /// The link adjacency as index pairs (see [`link_adjacency`]).
    pub(crate) fn link_adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        link_adjacency(self.procs.len(), &self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Arch {
        let mut b = Arch::builder("tri");
        let p1 = b.proc("P1");
        let p2 = b.proc("P2");
        let p3 = b.proc("P3");
        b.link("L12", &[p1, p2]);
        b.link("L13", &[p1, p3]);
        b.link("L23", &[p2, p3]);
        b.build().unwrap()
    }

    #[test]
    fn triangle_routes_are_direct() {
        let a = triangle();
        assert!(a.is_fully_connected());
        for src in a.procs() {
            for dst in a.procs() {
                if src == dst {
                    assert!(a.route(src, dst).is_empty());
                } else {
                    let r = a.route(src, dst);
                    assert_eq!(r.len(), 1);
                    assert_eq!(r[0].from, src);
                    assert_eq!(r[0].to, dst);
                    assert!(a.link(r[0].link).connects(src));
                    assert!(a.link(r[0].link).connects(dst));
                }
            }
        }
    }

    #[test]
    fn chain_routes_multi_hop() {
        let mut b = Arch::builder("chain");
        let p1 = b.proc("P1");
        let p2 = b.proc("P2");
        let p3 = b.proc("P3");
        b.link("L12", &[p1, p2]);
        b.link("L23", &[p2, p3]);
        let a = b.build().unwrap();
        assert!(!a.is_fully_connected());
        let r = a.route(p1, p3);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].from, p1);
        assert_eq!(r[0].to, p2);
        assert_eq!(r[1].from, p2);
        assert_eq!(r[1].to, p3);
    }

    #[test]
    fn bus_connects_everyone_in_one_hop() {
        let mut b = Arch::builder("bus");
        let ps: Vec<_> = (0..4).map(|i| b.proc(format!("P{i}"))).collect();
        b.link("BUS", &ps);
        let a = b.build().unwrap();
        assert!(a.is_fully_connected());
        assert!(!a.link(LinkId(0)).is_point_to_point());
        assert_eq!(a.route(ps[0], ps[3]).len(), 1);
    }

    #[test]
    fn disconnected_rejected() {
        let mut b = Arch::builder("x");
        b.proc("P1");
        b.proc("P2");
        assert!(matches!(b.build(), Err(ModelError::Disconnected { .. })));
    }

    #[test]
    fn single_proc_is_valid() {
        let mut b = Arch::builder("uni");
        b.proc("P1");
        let a = b.build().unwrap();
        assert_eq!(a.proc_count(), 1);
        assert!(a.is_fully_connected());
    }

    #[test]
    fn degenerate_links_rejected() {
        let mut b = Arch::builder("x");
        let p1 = b.proc("P1");
        b.proc("P2");
        b.link("L", &[p1]);
        assert!(matches!(b.build(), Err(ModelError::DegenerateLink { .. })));

        let mut b = Arch::builder("x");
        let p1 = b.proc("P1");
        b.proc("P2");
        b.link("L", &[p1, p1]);
        assert!(matches!(b.build(), Err(ModelError::DegenerateLink { .. })));

        let mut b = Arch::builder("x");
        let p1 = b.proc("P1");
        b.link("L", &[p1, ProcId(9)]);
        assert!(matches!(b.build(), Err(ModelError::DegenerateLink { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = Arch::builder("x");
        b.proc("P");
        b.proc("P");
        assert!(matches!(
            b.build(),
            Err(ModelError::DuplicateName {
                kind: "processor",
                ..
            })
        ));

        let mut b = Arch::builder("x");
        let p1 = b.proc("P1");
        let p2 = b.proc("P2");
        b.link("L", &[p1, p2]);
        b.link("L", &[p1, p2]);
        assert!(matches!(
            b.build(),
            Err(ModelError::DuplicateName { kind: "link", .. })
        ));
    }

    #[test]
    fn lookup_by_name() {
        let a = triangle();
        assert_eq!(a.proc_by_name("P2"), Some(ProcId(1)));
        assert_eq!(a.link_by_name("L23"), Some(LinkId(2)));
        assert!(a.proc_by_name("nope").is_none());
    }

    #[test]
    fn links_of_proc() {
        let a = triangle();
        let p1 = a.proc_by_name("P1").unwrap();
        let names: Vec<_> = a
            .links_of(p1)
            .into_iter()
            .map(|l| a.link(l).name().to_owned())
            .collect();
        assert_eq!(names, vec!["L12", "L13"]);
    }

    #[test]
    fn empty_arch_rejected() {
        assert!(matches!(
            Arch::builder("x").build(),
            Err(ModelError::EmptyArch)
        ));
    }
}
