//! Execution-time tables: `Exe` and the distribution constraints `Dis`
//! (paper §3.4).
//!
//! * [`ExecTable`] maps ⟨operation, processor⟩ to an execution time, or to
//!   "forbidden" (the paper's `∞` entries — the `Dis` constraints).
//! * [`CommTable`] maps ⟨data-dependency, link⟩ to a transmission time.
//!   Intra-processor communication always costs zero and is not stored.

use serde::{Deserialize, Serialize};

use crate::alg::Alg;
use crate::arch::Arch;
use crate::error::ModelError;
use crate::ids::{DepId, LinkId, OpId, ProcId};
use crate::time::Time;

/// Dense ⟨operation × processor⟩ execution-time table.
///
/// `None` entries mean the operation may not run on that processor
/// (distribution constraint `∞`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecTable {
    n_ops: usize,
    n_procs: usize,
    times: Vec<Option<Time>>,
}

impl ExecTable {
    /// Creates a table with every entry forbidden.
    pub fn new(n_ops: usize, n_procs: usize) -> Self {
        ExecTable {
            n_ops,
            n_procs,
            times: vec![None; n_ops * n_procs],
        }
    }

    /// Creates a table with every entry set to `t` (homogeneous machine).
    pub fn uniform(n_ops: usize, n_procs: usize, t: Time) -> Self {
        ExecTable {
            n_ops,
            n_procs,
            times: vec![Some(t); n_ops * n_procs],
        }
    }

    fn idx(&self, op: OpId, proc: ProcId) -> usize {
        debug_assert!(op.index() < self.n_ops && proc.index() < self.n_procs);
        op.index() * self.n_procs + proc.index()
    }

    /// Sets the execution time of `op` on `proc`.
    pub fn set(&mut self, op: OpId, proc: ProcId, t: Time) {
        let i = self.idx(op, proc);
        self.times[i] = Some(t);
    }

    /// Forbids `op` on `proc` (a `Dis` `∞` entry).
    pub fn forbid(&mut self, op: OpId, proc: ProcId) {
        let i = self.idx(op, proc);
        self.times[i] = None;
    }

    /// Execution time of `op` on `proc`, or `None` if forbidden.
    pub fn get(&self, op: OpId, proc: ProcId) -> Option<Time> {
        self.times[self.idx(op, proc)]
    }

    /// True if `op` may execute on `proc`.
    pub fn allows(&self, op: OpId, proc: ProcId) -> bool {
        self.get(op, proc).is_some()
    }

    /// Processors allowed for `op`, in id order.
    pub fn allowed_procs(&self, op: OpId) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.n_procs as u32)
            .map(ProcId)
            .filter(move |&p| self.allows(op, p))
    }

    /// Average execution time of `op` over its allowed processors, in
    /// floating-point units (0 if fully forbidden).
    pub fn avg_units(&self, op: OpId) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in self.allowed_procs(op) {
            sum += self.get(op, p).expect("allowed").as_units();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Number of operations (rows).
    pub fn op_count(&self) -> usize {
        self.n_ops
    }

    /// Number of processors (columns).
    pub fn proc_count(&self) -> usize {
        self.n_procs
    }

    /// Mean of all finite entries, in units (0 if none).
    pub fn mean_units(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for t in self.times.iter().flatten() {
            sum += t.as_units();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Dense ⟨data-dependency × link⟩ transmission-time table.
///
/// `None` means the link cannot carry the dependency (unusual; validation
/// rejects it when the link lies on a route the schedule might use).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommTable {
    n_deps: usize,
    n_links: usize,
    times: Vec<Option<Time>>,
}

impl CommTable {
    /// Creates a table with every entry missing.
    pub fn new(n_deps: usize, n_links: usize) -> Self {
        CommTable {
            n_deps,
            n_links,
            times: vec![None; n_deps.max(1) * n_links],
        }
    }

    /// Creates a table where every dependency costs `t` on every link.
    pub fn uniform(n_deps: usize, n_links: usize, t: Time) -> Self {
        CommTable {
            n_deps,
            n_links,
            times: vec![Some(t); n_deps.max(1) * n_links],
        }
    }

    /// Derives a table from dependency sizes and a per-link time-per-unit
    /// rate: `time(dep, link) = size(dep) × rate(link)`.
    pub fn from_rates(alg: &Alg, arch: &Arch, rate: impl Fn(LinkId) -> Time) -> Self {
        let mut t = CommTable::new(alg.dep_count(), arch.link_count());
        for d in alg.deps() {
            for l in arch.links() {
                t.set(d, l, rate(l).scale(alg.dep(d).size()));
            }
        }
        t
    }

    fn idx(&self, dep: DepId, link: LinkId) -> usize {
        debug_assert!(dep.index() < self.n_deps && link.index() < self.n_links);
        dep.index() * self.n_links + link.index()
    }

    /// Sets the transmission time of `dep` on `link`.
    pub fn set(&mut self, dep: DepId, link: LinkId, t: Time) {
        let i = self.idx(dep, link);
        self.times[i] = Some(t);
    }

    /// Transmission time of `dep` on `link`, or `None`.
    pub fn get(&self, dep: DepId, link: LinkId) -> Option<Time> {
        self.times[self.idx(dep, link)]
    }

    /// Average transmission time of `dep` over links carrying it, in units
    /// (0 if the table is empty — e.g. a single-processor architecture).
    pub fn avg_units(&self, dep: DepId) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for l in 0..self.n_links {
            if let Some(t) = self.times[dep.index() * self.n_links + l] {
                sum += t.as_units();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Number of dependencies (rows).
    pub fn dep_count(&self) -> usize {
        self.n_deps
    }

    /// Number of links (columns).
    pub fn link_count(&self) -> usize {
        self.n_links
    }

    /// Mean of all present entries, in units (0 if none).
    pub fn mean_units(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for t in self.times.iter().flatten() {
            sum += t.as_units();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Validates table dimensions against the models.
pub(crate) fn check_dims(
    alg: &Alg,
    arch: &Arch,
    exec: &ExecTable,
    comm: &CommTable,
) -> Result<(), ModelError> {
    if exec.op_count() != alg.op_count() || exec.proc_count() != arch.proc_count() {
        return Err(ModelError::DimensionMismatch {
            what: "ExecTable is not |ops| x |procs|",
        });
    }
    if comm.dep_count() != alg.dep_count() || comm.link_count() != arch.link_count() {
        return Err(ModelError::DimensionMismatch {
            what: "CommTable is not |deps| x |links|",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg;
    use crate::arch::Arch;

    fn tiny() -> (Alg, Arch) {
        let mut b = Alg::builder("t");
        let a = b.comp("A");
        let c = b.comp("B");
        b.dep_sized(a, c, 2.0);
        let alg = b.build().unwrap();
        let mut b = Arch::builder("duo");
        let p1 = b.proc("P1");
        let p2 = b.proc("P2");
        b.link("L", &[p1, p2]);
        (alg, b.build().unwrap())
    }

    #[test]
    fn exec_set_get_forbid() {
        let mut t = ExecTable::new(2, 2);
        let (a, p1) = (OpId(0), ProcId(0));
        assert!(!t.allows(a, p1));
        t.set(a, p1, Time::from_units(1.5));
        assert_eq!(t.get(a, p1), Some(Time::from_units(1.5)));
        t.forbid(a, p1);
        assert!(t.get(a, p1).is_none());
    }

    #[test]
    fn exec_allowed_and_avg() {
        let mut t = ExecTable::new(1, 3);
        t.set(OpId(0), ProcId(0), Time::from_units(1.0));
        t.set(OpId(0), ProcId(2), Time::from_units(3.0));
        let allowed: Vec<_> = t.allowed_procs(OpId(0)).collect();
        assert_eq!(allowed, vec![ProcId(0), ProcId(2)]);
        assert_eq!(t.avg_units(OpId(0)), 2.0);
    }

    #[test]
    fn exec_uniform_and_mean() {
        let t = ExecTable::uniform(2, 2, Time::from_units(4.0));
        assert_eq!(t.mean_units(), 4.0);
        assert_eq!(t.avg_units(OpId(1)), 4.0);
    }

    #[test]
    fn comm_set_get_avg() {
        let mut t = CommTable::new(1, 2);
        assert_eq!(t.avg_units(DepId(0)), 0.0);
        t.set(DepId(0), LinkId(0), Time::from_units(1.0));
        t.set(DepId(0), LinkId(1), Time::from_units(2.0));
        assert_eq!(t.get(DepId(0), LinkId(1)), Some(Time::from_units(2.0)));
        assert_eq!(t.avg_units(DepId(0)), 1.5);
        assert_eq!(t.mean_units(), 1.5);
    }

    #[test]
    fn comm_from_rates_scales_by_size() {
        let (alg, arch) = tiny();
        let t = CommTable::from_rates(&alg, &arch, |_| Time::from_units(0.5));
        // dep size is 2.0, rate 0.5 => 1.0
        assert_eq!(t.get(DepId(0), LinkId(0)), Some(Time::from_units(1.0)));
    }

    #[test]
    fn dims_checked() {
        let (alg, arch) = tiny();
        let good_e = ExecTable::uniform(alg.op_count(), arch.proc_count(), Time::from_units(1.0));
        let good_c = CommTable::uniform(alg.dep_count(), arch.link_count(), Time::from_units(1.0));
        assert!(check_dims(&alg, &arch, &good_e, &good_c).is_ok());
        let bad_e = ExecTable::uniform(5, 2, Time::from_units(1.0));
        assert!(check_dims(&alg, &arch, &bad_e, &good_c).is_err());
        let bad_c = CommTable::uniform(9, 9, Time::from_units(1.0));
        assert!(check_dims(&alg, &arch, &good_e, &bad_c).is_err());
    }

    #[test]
    fn zero_dep_graph_supported() {
        let t = CommTable::new(0, 3);
        assert_eq!(t.dep_count(), 0);
        assert_eq!(t.mean_units(), 0.0);
    }
}
