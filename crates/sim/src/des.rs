//! Multi-iteration discrete-event simulation of a static schedule under a
//! fault plan, with the two failure-handling options of paper §5.
//!
//! The cyclic execution model (§3.2) runs the schedule once per input
//! event. Iterations execute back to back: iteration `i + 1` begins when
//! iteration `i` has finished (every surviving resource idle). Within one
//! iteration the timing semantics are exactly
//! [`ftbar_core::replay`]; across iterations this module adds:
//!
//! * **intermittent failures** — a processor silent during part of an
//!   iteration is lost for that whole iteration (a killed static sequence
//!   cannot resynchronize mid-iteration), but participates again in later
//!   iterations once recovered;
//! * **detection mode** ([`Detection::None`] vs [`Detection::Array`]):
//!   without detection, healthy processors keep sending to faulty ones
//!   (tolerates intermittent failures); with the faulty-processor array,
//!   comms toward detected processors are suppressed from the next
//!   iteration on — and a recovered processor stays excluded forever (the
//!   paper's §5 drawback, observable in the metrics).

use ftbar_core::{replay_with, FailureScenario, ReplayConfig, Schedule};
use ftbar_model::{LinkId, Problem, ProcId, Time};
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;

/// Failure-handling option (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Detection {
    /// Option 1: no detection. Comms to faulty processors still occupy
    /// links; intermittent failures recover transparently.
    #[default]
    None,
    /// Option 2: each processor maintains an array of detected-faulty
    /// processors (from missed comm deadlines) and stops sending to them.
    /// Recovered processors stay excluded.
    Array,
}

/// Configuration of [`simulate`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of iterations to run.
    pub iterations: usize,
    /// Failure-handling option.
    pub detection: Detection,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            iterations: 1,
            detection: Detection::None,
        }
    }
}

/// Per-iteration outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Absolute start instant of the iteration.
    pub start: Time,
    /// Iteration length (relative completion), `None` when some operation
    /// produced no result anywhere (masking failed).
    pub completion: Option<Time>,
    /// Processors silent at any point during this iteration.
    pub failed_procs: Vec<ProcId>,
    /// Links silent at any point during this iteration.
    pub failed_links: Vec<LinkId>,
    /// Comms actually delivered.
    pub comms_delivered: usize,
    /// Comms cancelled (dead source / mid-flight failure) or suppressed by
    /// the faulty-processor array.
    pub comms_cancelled: usize,
}

/// Result of [`simulate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// One report per iteration.
    pub iterations: Vec<IterationReport>,
    /// Total simulated time (end of the last iteration).
    pub total_time: Time,
    /// Detected-faulty array at the end (always empty without detection).
    pub detected_faulty: Vec<ProcId>,
}

impl SimReport {
    /// True if every iteration masked its failures.
    pub fn all_masked(&self) -> bool {
        self.iterations.iter().all(|i| i.completion.is_some())
    }

    /// Longest iteration completion observed.
    pub fn worst_iteration(&self) -> Option<Time> {
        self.iterations.iter().filter_map(|i| i.completion).max()
    }
}

/// Simulates `config.iterations` back-to-back executions of `schedule`
/// under `plan`.
///
/// # Panics
///
/// Panics if `schedule`/`problem` shapes mismatch or
/// `config.iterations == 0`.
pub fn simulate(
    problem: &Problem,
    schedule: &Schedule,
    plan: &FaultPlan,
    config: &SimConfig,
) -> SimReport {
    assert!(config.iterations > 0, "need at least one iteration");
    let n = problem.arch().proc_count();
    let mut detected = vec![false; n];
    let mut clock = Time::ZERO;
    let mut iterations = Vec::with_capacity(config.iterations);

    for _ in 0..config.iterations {
        // Horizon estimate for mapping absolute fault windows onto this
        // iteration: nominal schedule span (failures only stretch the tail;
        // a failure that begins after the nominal horizon but before the
        // stretched end is conservatively ignored for this iteration).
        let horizon = schedule.last_activity().max(Time::from_ticks(1));
        let iter_end_estimate = clock + horizon;

        let mut failures: Vec<(ProcId, Time)> = Vec::new();
        let mut failed_procs = Vec::new();
        for p in problem.arch().procs() {
            let fail_abs = if detected[p.index()] {
                // Option 2: once detected, permanently excluded.
                Some(clock)
            } else {
                plan.first_failure_in(p, clock, iter_end_estimate)
            };
            if let Some(t) = fail_abs {
                failures.push((p, t - clock));
                failed_procs.push(p);
            }
        }
        let mut scenario = FailureScenario::multi(n, &failures);
        let mut failed_links = Vec::new();
        for l in problem.arch().links() {
            if let Some(t) = plan.first_link_failure_in(l, clock, iter_end_estimate) {
                scenario = scenario.with_link_failure(l, t - clock);
                failed_links.push(l);
            }
        }
        let replay_cfg = ReplayConfig {
            suppress_comms_to: match config.detection {
                Detection::None => Vec::new(),
                Detection::Array => detected.clone(),
            },
            extend_durations: Vec::new(),
        };
        let result = replay_with(problem, schedule, &scenario, &replay_cfg);

        let delivered = (0..schedule.comm_count())
            .filter(|&c| result.comm_arrival(ftbar_core::CommId(c as u32)).is_some())
            .count();
        iterations.push(IterationReport {
            start: clock,
            completion: result.completion(),
            failed_procs: failed_procs.clone(),
            failed_links,
            comms_delivered: delivered,
            comms_cancelled: schedule.comm_count() - delivered,
        });

        if config.detection == Detection::Array {
            for &(p, _) in &failures {
                detected[p.index()] = true;
            }
        }
        // Advance to the end of this iteration.
        clock += result.last_event().max(horizon);
    }

    SimReport {
        total_time: clock,
        detected_faulty: (0..n as u32)
            .map(ProcId)
            .filter(|p| detected[p.index()])
            .collect(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbar_core::ftbar;
    use ftbar_model::paper_example;

    fn t(u: f64) -> Time {
        Time::from_units(u)
    }

    fn setup() -> (Problem, Schedule) {
        let p = paper_example();
        let s = ftbar::schedule(&p).unwrap();
        (p, s)
    }

    #[test]
    fn fault_free_iterations_repeat_identically() {
        let (p, s) = setup();
        let r = simulate(
            &p,
            &s,
            &FaultPlan::new(3),
            &SimConfig {
                iterations: 4,
                detection: Detection::None,
            },
        );
        assert!(r.all_masked());
        let c0 = r.iterations[0].completion.unwrap();
        for it in &r.iterations {
            assert_eq!(it.completion, Some(c0));
            assert!(it.failed_procs.is_empty());
            assert_eq!(it.comms_cancelled, 0);
        }
        assert!(r.detected_faulty.is_empty());
    }

    #[test]
    fn permanent_failure_affects_all_later_iterations() {
        let (p, s) = setup();
        let mut plan = FaultPlan::new(3);
        plan.permanent(ProcId(0), Time::ZERO);
        let r = simulate(
            &p,
            &s,
            &plan,
            &SimConfig {
                iterations: 3,
                detection: Detection::None,
            },
        );
        assert!(r.all_masked(), "Npf = 1 masks a permanent single failure");
        for it in &r.iterations {
            assert_eq!(it.failed_procs, vec![ProcId(0)]);
            assert!(it.comms_cancelled > 0);
        }
    }

    #[test]
    fn intermittent_failure_recovers_without_detection() {
        let (p, s) = setup();
        let mut plan = FaultPlan::new(3);
        // Fails during iteration 0 only (nominal horizon ≈ 15).
        plan.intermittent(ProcId(1), t(1.0), t(2.0));
        let r = simulate(
            &p,
            &s,
            &plan,
            &SimConfig {
                iterations: 3,
                detection: Detection::None,
            },
        );
        assert!(r.all_masked());
        assert_eq!(r.iterations[0].failed_procs, vec![ProcId(1)]);
        // Option 1: recovered for the remaining iterations.
        assert!(r.iterations[1].failed_procs.is_empty());
        assert!(r.iterations[2].failed_procs.is_empty());
        assert_eq!(r.iterations[2].comms_cancelled, 0);
    }

    #[test]
    fn detection_array_excludes_recovered_processors() {
        let (p, s) = setup();
        let mut plan = FaultPlan::new(3);
        plan.intermittent(ProcId(1), t(1.0), t(2.0));
        let r = simulate(
            &p,
            &s,
            &plan,
            &SimConfig {
                iterations: 3,
                detection: Detection::Array,
            },
        );
        assert!(r.all_masked());
        // Option 2 drawback: P2 stays excluded after recovery.
        assert_eq!(r.detected_faulty, vec![ProcId(1)]);
        assert_eq!(r.iterations[1].failed_procs, vec![ProcId(1)]);
        assert_eq!(r.iterations[2].failed_procs, vec![ProcId(1)]);
    }

    #[test]
    fn detection_array_reduces_link_traffic() {
        let (p, s) = setup();
        let mut plan = FaultPlan::new(3);
        plan.permanent(ProcId(0), Time::ZERO);
        let without = simulate(
            &p,
            &s,
            &plan,
            &SimConfig {
                iterations: 2,
                detection: Detection::None,
            },
        );
        let with = simulate(
            &p,
            &s,
            &plan,
            &SimConfig {
                iterations: 2,
                detection: Detection::Array,
            },
        );
        // From iteration 1 on, comms toward P1 are suppressed.
        assert!(with.iterations[1].comms_delivered <= without.iterations[1].comms_delivered);
        assert!(with.all_masked());
    }

    #[test]
    fn two_simultaneous_failures_break_masking() {
        let (p, s) = setup();
        let mut plan = FaultPlan::new(3);
        plan.permanent(ProcId(0), Time::ZERO);
        plan.permanent(ProcId(1), Time::ZERO);
        let r = simulate(&p, &s, &plan, &SimConfig::default());
        assert!(!r.all_masked());
    }

    #[test]
    fn fault_at_time_zero_is_masked() {
        // Edge case: the processor is dead before its first slot starts.
        let (p, s) = setup();
        let mut plan = FaultPlan::new(3);
        plan.permanent(ProcId(2), Time::ZERO);
        let r = simulate(&p, &s, &plan, &SimConfig::default());
        assert!(r.all_masked());
        assert_eq!(r.iterations[0].failed_procs, vec![ProcId(2)]);
    }

    #[test]
    fn fault_after_schedule_completion_changes_nothing() {
        // Edge case: the window opens after the single iteration's horizon,
        // so no iteration ever observes it.
        let (p, s) = setup();
        let nominal = simulate(&p, &s, &FaultPlan::new(3), &SimConfig::default());
        let mut plan = FaultPlan::new(3);
        plan.permanent(ProcId(0), s.last_activity() + t(100.0));
        let r = simulate(&p, &s, &plan, &SimConfig::default());
        assert_eq!(r, nominal);
        assert!(r.iterations[0].failed_procs.is_empty());
        assert!(r.iterations[0].failed_links.is_empty());
        assert_eq!(r.iterations[0].comms_cancelled, 0);
    }

    #[test]
    fn link_failure_is_simulated_not_ignored() {
        // Regression for the silent-drop bug: link windows used to be
        // impossible to express, so plans could only model processor
        // faults. Killing L1.2 at t = 0 must now show up in the report and
        // cancel its traffic.
        let (p, s) = setup();
        let nominal = simulate(&p, &s, &FaultPlan::new(3), &SimConfig::default());
        let mut plan = FaultPlan::new(3);
        plan.link_permanent(LinkId(0), Time::ZERO);
        let r = simulate(&p, &s, &plan, &SimConfig::default());
        assert_eq!(r.iterations[0].failed_links, vec![LinkId(0)]);
        assert!(r.iterations[0].failed_procs.is_empty());
        assert!(
            r.iterations[0].comms_delivered < nominal.iterations[0].comms_delivered,
            "a dead link must lose at least one transfer"
        );
    }

    #[test]
    fn simultaneous_proc_and_link_failure_is_masked() {
        // P1 dies at t = 0 together with L1.2. Every transfer on L1.2 has
        // the dead P1 as an endpoint, so the combination is no worse than
        // the processor failure alone and Npf = 1 masking must hold.
        let (p, s) = setup();
        let mut plan = FaultPlan::new(3);
        plan.permanent(ProcId(0), Time::ZERO);
        plan.link_permanent(LinkId(0), Time::ZERO);
        let r = simulate(&p, &s, &plan, &SimConfig::default());
        assert!(r.all_masked());
        assert_eq!(r.iterations[0].failed_procs, vec![ProcId(0)]);
        assert_eq!(r.iterations[0].failed_links, vec![LinkId(0)]);
    }

    #[test]
    fn intermittent_link_failure_recovers_across_iterations() {
        let (p, s) = setup();
        let mut plan = FaultPlan::new(3);
        plan.link_intermittent(LinkId(1), t(0.5), t(1.5));
        let r = simulate(
            &p,
            &s,
            &plan,
            &SimConfig {
                iterations: 2,
                detection: Detection::None,
            },
        );
        assert_eq!(r.iterations[0].failed_links, vec![LinkId(1)]);
        assert!(r.iterations[1].failed_links.is_empty());
        assert_eq!(r.iterations[1].comms_cancelled, 0);
    }

    #[test]
    fn staggered_failures_across_iterations_are_each_masked() {
        // One failure per iteration (never two at once): §4.4 notes several
        // failures in a row are supported. With a permanent model the procs
        // accumulate, so use intermittent windows within distinct
        // iterations.
        let (p, s) = setup();
        let horizon = s.last_activity();
        let mut plan = FaultPlan::new(3);
        plan.intermittent(ProcId(0), t(1.0), t(2.0)); // iteration 0
        plan.intermittent(ProcId(1), horizon + t(1.0), horizon + t(2.0)); // iteration 1
        let r = simulate(
            &p,
            &s,
            &plan,
            &SimConfig {
                iterations: 2,
                detection: Detection::None,
            },
        );
        assert!(r.all_masked());
        assert_eq!(r.iterations[0].failed_procs, vec![ProcId(0)]);
        assert_eq!(r.iterations[1].failed_procs, vec![ProcId(1)]);
    }
}
