//! Contingency engine: exhaustive N−k fault sweeps, Monte Carlo campaigns,
//! and an empirical fault-tolerance certificate.
//!
//! The paper proves its schedules tolerate up to `Npf` processor failures;
//! this module measures it. A [`generate`]d campaign enumerates **every**
//! failure subset of size `1..=Npf` exactly (failures at `t = 0`, the
//! worst case for a static schedule), extends the sweep beyond `Npf`
//! (exhaustively while the subset count stays under
//! [`ScenarioConfig::exhaustive_cap`], Monte Carlo sampled with random
//! fault instants otherwise), and optionally adds link-failure patterns
//! and timing-jitter perturbations — all drawn from one seeded
//! deterministic RNG, so a campaign is a pure function of
//! `(problem, schedule, config)`.
//!
//! Each scenario is [`evaluate`]d with the analytic replay
//! ([`ftbar_core::replay_with`]); [`assemble`] folds the per-scenario
//! results into a [`ReliabilityReport`] whose [`Certificate`] compares the
//! empirical maximum fault count survived against the two
//! Goemans/Lynch/Saias-style bounds (see `DESIGN.md` §10):
//!
//! * **lower bound** — the design `Npf` (the paper's claim);
//! * **counting upper bound** — `min` over operations of (distinct
//!   replica-hosting processors − 1): killing every host of the least
//!   replicated operation necessarily drops it.
//!
//! The certificate PASSes iff `design ≤ empirical ≤ counting`. Scenario
//! evaluation is embarrassingly parallel; `ftbar-service` fans a campaign
//! across its worker pool and reassembles results by scenario index, so
//! the rendered report is byte-identical for any job count.

use ftbar_core::{replay_with, FailureScenario, ReplayConfig, ReplicaOutcome, Schedule};
use ftbar_model::{LinkId, Problem, ProcId, Time};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How a scenario was produced (reported per sweep group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// The fault-free baseline (always scenario 0).
    Nominal,
    /// One subset of an exhaustive processor-failure sweep (`t = 0`).
    Exhaustive,
    /// One Monte Carlo draw: random subset, random fault instants.
    Sampled,
    /// A link-failure pattern (possibly combined with a processor fault).
    Link,
    /// Fault-free but with per-replica execution-time jitter.
    Jitter,
}

/// One concrete perturbation to replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Position in the campaign (stable across job counts).
    pub id: usize,
    /// Sweep group this scenario belongs to.
    pub kind: ScenarioKind,
    /// Processor failures (fail-silent from the given instant).
    pub procs: Vec<(ProcId, Time)>,
    /// Link failures (fail-silent from the given instant).
    pub links: Vec<(LinkId, Time)>,
    /// Per-replica additive duration stretch (empty: none).
    pub jitter: Vec<Time>,
}

impl Scenario {
    /// Number of processor failures injected.
    pub fn size(&self) -> usize {
        self.procs.len()
    }
}

/// Campaign shape. All randomness derives from `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Failure-subset sizes to probe beyond `Npf` (`Npf+1 ..= Npf+beyond`).
    pub beyond: u32,
    /// Monte Carlo draws per size too large to enumerate.
    pub samples_per_size: usize,
    /// Enumerate a size exhaustively while `C(P, k)` stays at or below
    /// this; larger sizes are sampled.
    pub exhaustive_cap: usize,
    /// Also sweep link-failure patterns (every single link at `t = 0`,
    /// plus one sampled link+processor combination per link when
    /// `Npf ≥ 1`).
    pub links: bool,
    /// Number of fault-free timing-jitter scenarios.
    pub jitter_samples: usize,
    /// Per-replica jitter: each duration stretches by a uniform fraction
    /// in `[0, jitter_frac)` of itself.
    pub jitter_frac: f64,
    /// Deadline for the miss count; defaults to the booked schedule
    /// completion when `None`.
    pub deadline: Option<Time>,
    /// RNG seed; same seed ⇒ same campaign, byte for byte.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            beyond: 1,
            samples_per_size: 32,
            exhaustive_cap: 4096,
            links: false,
            jitter_samples: 0,
            jitter_frac: 0.1,
            deadline: None,
            seed: 0,
        }
    }
}

/// `C(n, k)` without overflow (saturating; only compared against caps).
fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

/// Pushes every size-`k` subset of `0..n` as a `t = 0` failure scenario.
fn push_exhaustive(out: &mut Vec<Scenario>, n: usize, k: usize) {
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(Scenario {
            id: out.len(),
            kind: ScenarioKind::Exhaustive,
            procs: idx
                .iter()
                .map(|&i| (ProcId(i as u32), Time::ZERO))
                .collect(),
            links: Vec::new(),
            jitter: Vec::new(),
        });
        // Next lexicographic combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Draws `k` distinct processors with independent fault instants in
/// `[0, horizon)`.
fn sample_subset(
    rng: &mut rand::rngs::StdRng,
    n: usize,
    k: usize,
    horizon: f64,
) -> Vec<(ProcId, Time)> {
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    while picked.len() < k {
        let p = rng.gen_range(0..n);
        if !picked.contains(&p) {
            picked.push(p);
        }
    }
    picked.sort_unstable();
    picked
        .into_iter()
        .map(|p| (ProcId(p as u32), sample_instant(rng, horizon)))
        .collect()
}

fn sample_instant(rng: &mut rand::rngs::StdRng, horizon: f64) -> Time {
    if horizon > 0.0 {
        Time::from_units(rng.gen_range(0.0..horizon))
    } else {
        Time::ZERO
    }
}

/// Generates the full campaign for `(problem, schedule)` under `config`.
///
/// Deterministic: the returned vector (ids, order, drawn instants) is a
/// pure function of the inputs. Scenario 0 is always the nominal run.
pub fn generate(problem: &Problem, schedule: &Schedule, config: &ScenarioConfig) -> Vec<Scenario> {
    let n = problem.arch().proc_count();
    let npf = problem.npf() as usize;
    let horizon = schedule.last_activity().as_units();
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();

    out.push(Scenario {
        id: 0,
        kind: ScenarioKind::Nominal,
        procs: Vec::new(),
        links: Vec::new(),
        jitter: Vec::new(),
    });

    // Processor-failure sweep: exhaustive through Npf (and beyond while
    // cheap), sampled past the cap.
    for k in 1..=npf.saturating_add(config.beyond as usize).min(n) {
        if k <= npf || binomial(n, k) <= config.exhaustive_cap as u128 {
            push_exhaustive(&mut out, n, k);
        } else {
            for _ in 0..config.samples_per_size {
                let id = out.len();
                out.push(Scenario {
                    id,
                    kind: ScenarioKind::Sampled,
                    procs: sample_subset(&mut rng, n, k, horizon),
                    links: Vec::new(),
                    jitter: Vec::new(),
                });
            }
        }
    }

    if config.links {
        for l in problem.arch().links() {
            let id = out.len();
            out.push(Scenario {
                id,
                kind: ScenarioKind::Link,
                procs: Vec::new(),
                links: vec![(l, Time::ZERO)],
                jitter: Vec::new(),
            });
        }
        if npf >= 1 {
            // One sampled simultaneous link+processor fault per link.
            for l in problem.arch().links() {
                let id = out.len();
                let procs = sample_subset(&mut rng, n, 1, horizon);
                let at = sample_instant(&mut rng, horizon);
                out.push(Scenario {
                    id,
                    kind: ScenarioKind::Link,
                    procs,
                    links: vec![(l, at)],
                    jitter: Vec::new(),
                });
            }
        }
    }

    for _ in 0..config.jitter_samples {
        let id = out.len();
        let jitter = schedule
            .replicas()
            .iter()
            .map(|r| {
                if config.jitter_frac > 0.0 {
                    r.slot
                        .duration()
                        .scale(rng.gen_range(0.0..config.jitter_frac))
                } else {
                    Time::ZERO
                }
            })
            .collect();
        out.push(Scenario {
            id,
            kind: ScenarioKind::Jitter,
            procs: Vec::new(),
            links: Vec::new(),
            jitter,
        });
    }

    out
}

/// Outcome of one scenario replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Schedule length of this execution; `None` when some operation
    /// produced no result anywhere (masking failed).
    pub completion: Option<Time>,
    /// True when all operations completed by the campaign deadline.
    pub deadline_met: bool,
    /// Operations with no completed replica.
    pub dropped_ops: usize,
    /// Work of the first-completing replica of each completed operation
    /// (Dwork/Halpern/Waarts "useful work").
    pub useful_work: Time,
    /// Work of completed replicas beyond the useful one (replication
    /// overhead actually spent).
    pub wasted_work: Time,
    /// Comms delivered to their destination.
    pub comms_delivered: usize,
    /// Comms cancelled (dead source, dead link, mid-flight loss).
    pub comms_cancelled: usize,
}

impl ScenarioResult {
    /// True when every operation completed somewhere.
    pub fn survived(&self) -> bool {
        self.completion.is_some()
    }
}

/// Replays one scenario. Pure: safe to fan out across threads.
pub fn evaluate(
    problem: &Problem,
    schedule: &Schedule,
    scenario: &Scenario,
    deadline: Time,
) -> ScenarioResult {
    let n = problem.arch().proc_count();
    let mut failure = FailureScenario::multi(n, &scenario.procs);
    for &(l, t) in &scenario.links {
        failure = failure.with_link_failure(l, t);
    }
    let config = ReplayConfig {
        suppress_comms_to: Vec::new(),
        extend_durations: scenario.jitter.clone(),
    };
    let result = replay_with(problem, schedule, &failure, &config);

    let mut dropped = 0usize;
    let mut useful = Time::ZERO;
    let mut total = Time::ZERO;
    for op in 0..schedule.op_count() {
        let mut first: Option<(Time, Time)> = None; // (end, duration)
        for &r in schedule.replicas_of(ftbar_model::OpId(op as u32)) {
            if let ReplicaOutcome::Completed { start, end } = result.outcome(r) {
                let dur = end - start;
                total += dur;
                if first.is_none_or(|(e, _)| end < e) {
                    first = Some((end, dur));
                }
            }
        }
        match first {
            Some((_, dur)) => useful += dur,
            None => dropped += 1,
        }
    }

    let delivered = (0..schedule.comm_count())
        .filter(|&c| result.comm_arrival(ftbar_core::CommId(c as u32)).is_some())
        .count();

    ScenarioResult {
        completion: result.completion(),
        deadline_met: result.completion().is_some_and(|c| c <= deadline),
        dropped_ops: dropped,
        useful_work: useful,
        wasted_work: total.saturating_sub(useful),
        comms_delivered: delivered,
        comms_cancelled: schedule.comm_count() - delivered,
    }
}

/// Aggregate over one sweep group (a subset size, the link sweep, or the
/// jitter sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Scenarios in the group.
    pub scenarios: usize,
    /// Scenarios where every operation completed.
    pub survived: usize,
    /// Scenarios that completed but after the deadline, plus those that
    /// never completed.
    pub deadline_misses: usize,
    /// Largest completion among surviving scenarios.
    pub worst_completion: Option<Time>,
    /// Largest per-scenario dropped-operation count.
    pub max_dropped_ops: usize,
    /// Total wasted (duplicated) work across the group.
    pub wasted_work: Time,
}

impl GroupSummary {
    fn fold(results: &[&ScenarioResult]) -> GroupSummary {
        GroupSummary {
            scenarios: results.len(),
            survived: results.iter().filter(|r| r.survived()).count(),
            deadline_misses: results.iter().filter(|r| !r.deadline_met).count(),
            worst_completion: results.iter().filter_map(|r| r.completion).max(),
            max_dropped_ops: results.iter().map(|r| r.dropped_ops).max().unwrap_or(0),
            wasted_work: results
                .iter()
                .fold(Time::ZERO, |acc, r| acc + r.wasted_work),
        }
    }
}

/// One processor-failure subset size within the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeSummary {
    /// Number of simultaneous processor failures.
    pub size: u32,
    /// True when every subset of this size was enumerated (a survived
    /// exhaustive size is a proof for that size, not an estimate).
    pub exhaustive: bool,
    /// Aggregated results.
    pub group: GroupSummary,
}

/// The Goemans/Lynch/Saias-style bound check (DESIGN.md §10).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// The design lower bound: the problem's `Npf`.
    pub design_npf: u32,
    /// The counting upper bound: `min` over operations of (distinct
    /// replica-hosting processors − 1).
    pub counting_upper: u32,
    /// Largest `k` such that every size `1..=k` was exhaustively swept
    /// with all subsets surviving.
    pub empirical_max: u32,
    /// `design_npf ≤ empirical_max ≤ counting_upper`.
    pub pass: bool,
}

/// The campaign's aggregated reliability report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Total scenarios replayed.
    pub scenario_count: usize,
    /// Completion of the fault-free baseline.
    pub nominal_completion: Option<Time>,
    /// Deadline used for the miss counts.
    pub deadline: Time,
    /// Per-size processor-failure sweeps, ascending size.
    pub sizes: Vec<SizeSummary>,
    /// Link-failure sweep (when enabled).
    pub link_sweep: Option<GroupSummary>,
    /// Timing-jitter sweep (when enabled).
    pub jitter_sweep: Option<GroupSummary>,
    /// The bound check.
    pub certificate: Certificate,
}

/// Folds per-scenario results (index-aligned with `scenarios`) into the
/// report. Deterministic: depends only on the slices' contents.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn assemble(
    problem: &Problem,
    schedule: &Schedule,
    config: &ScenarioConfig,
    scenarios: &[Scenario],
    results: &[ScenarioResult],
) -> ReliabilityReport {
    assert_eq!(scenarios.len(), results.len(), "index-aligned slices");

    let deadline = config.deadline.unwrap_or_else(|| schedule.completion());
    let nominal = scenarios
        .iter()
        .zip(results)
        .find(|(s, _)| s.kind == ScenarioKind::Nominal)
        .and_then(|(_, r)| r.completion);

    let max_size = scenarios
        .iter()
        .filter(|s| matches!(s.kind, ScenarioKind::Exhaustive | ScenarioKind::Sampled))
        .map(|s| s.size())
        .max()
        .unwrap_or(0);
    let mut sizes = Vec::new();
    for k in 1..=max_size {
        let group: Vec<&ScenarioResult> = scenarios
            .iter()
            .zip(results)
            .filter(|(s, _)| {
                matches!(s.kind, ScenarioKind::Exhaustive | ScenarioKind::Sampled) && s.size() == k
            })
            .map(|(_, r)| r)
            .collect();
        if group.is_empty() {
            continue;
        }
        let exhaustive = scenarios
            .iter()
            .filter(|s| s.size() == k)
            .all(|s| s.kind != ScenarioKind::Sampled)
            && group.len() as u128 == binomial(problem.arch().proc_count(), k);
        sizes.push(SizeSummary {
            size: k as u32,
            exhaustive,
            group: GroupSummary::fold(&group),
        });
    }

    let sweep = |kind: ScenarioKind| -> Option<GroupSummary> {
        let group: Vec<&ScenarioResult> = scenarios
            .iter()
            .zip(results)
            .filter(|(s, _)| s.kind == kind)
            .map(|(_, r)| r)
            .collect();
        (!group.is_empty()).then(|| GroupSummary::fold(&group))
    };

    // Counting upper bound: the least replicated operation caps tolerance.
    let counting_upper = (0..schedule.op_count())
        .map(|op| {
            let mut hosts: Vec<ProcId> = schedule
                .replicas_of(ftbar_model::OpId(op as u32))
                .iter()
                .map(|&r| schedule.replica(r).proc)
                .collect();
            hosts.sort();
            hosts.dedup();
            (hosts.len() as u32).saturating_sub(1)
        })
        .min()
        .unwrap_or(0);

    let mut empirical_max = 0u32;
    for s in &sizes {
        if s.exhaustive && s.group.survived == s.group.scenarios && s.size == empirical_max + 1 {
            empirical_max = s.size;
        } else {
            break;
        }
    }

    let design_npf = problem.npf();
    ReliabilityReport {
        scenario_count: scenarios.len(),
        nominal_completion: nominal,
        deadline,
        sizes,
        link_sweep: sweep(ScenarioKind::Link),
        jitter_sweep: sweep(ScenarioKind::Jitter),
        certificate: Certificate {
            design_npf,
            counting_upper,
            empirical_max,
            pass: design_npf <= empirical_max && empirical_max <= counting_upper,
        },
    }
}

fn push_group(out: &mut String, label: &str, g: &GroupSummary) {
    out.push_str(&format!(
        "{label}: {}/{} survived, {} deadline miss(es), worst completion {}, max dropped ops {}, wasted work {}\n",
        g.survived,
        g.scenarios,
        g.deadline_misses,
        g.worst_completion
            .map_or_else(|| "-".to_string(), |t| t.to_string()),
        g.max_dropped_ops,
        g.wasted_work,
    ));
}

/// Renders the human-readable report, ending in the certificate line.
pub fn render_text(report: &ReliabilityReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "reliability report: {} scenario(s), deadline {}, nominal completion {}\n",
        report.scenario_count,
        report.deadline,
        report
            .nominal_completion
            .map_or_else(|| "-".to_string(), |t| t.to_string()),
    ));
    for s in &report.sizes {
        let label = format!(
            "  {} k={}",
            if s.exhaustive {
                "exhaustive"
            } else {
                "sampled   "
            },
            s.size
        );
        push_group(&mut out, &label, &s.group);
    }
    if let Some(g) = &report.link_sweep {
        push_group(&mut out, "  links        ", g);
    }
    if let Some(g) = &report.jitter_sweep {
        push_group(&mut out, "  jitter       ", g);
    }
    let c = &report.certificate;
    out.push_str(&format!(
        "certificate: {} (design Npf {} <= empirical max {} <= counting upper {})\n",
        if c.pass { "PASS" } else { "FAIL" },
        c.design_npf,
        c.empirical_max,
        c.counting_upper,
    ));
    out
}

fn json_group(g: &GroupSummary) -> String {
    format!(
        "{{\"scenarios\": {}, \"survived\": {}, \"deadline_misses\": {}, \"worst_completion\": {}, \"max_dropped_ops\": {}, \"wasted_work\": {}}}",
        g.scenarios,
        g.survived,
        g.deadline_misses,
        g.worst_completion
            .map_or_else(|| "null".to_string(), |t| t.to_string()),
        g.max_dropped_ops,
        g.wasted_work,
    )
}

/// Renders the report as stable JSON (fixed key order; times as decimal
/// unit numbers).
pub fn render_json(report: &ReliabilityReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"scenario_count\": {},\n  \"nominal_completion\": {},\n  \"deadline\": {},\n",
        report.scenario_count,
        report
            .nominal_completion
            .map_or_else(|| "null".to_string(), |t| t.to_string()),
        report.deadline,
    ));
    out.push_str("  \"sizes\": [");
    for (i, s) in report.sizes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"size\": {}, \"exhaustive\": {}, \"group\": {}}}",
            s.size,
            s.exhaustive,
            json_group(&s.group)
        ));
    }
    out.push_str("],\n");
    for (key, sweep) in [
        ("link_sweep", &report.link_sweep),
        ("jitter_sweep", &report.jitter_sweep),
    ] {
        out.push_str(&format!(
            "  \"{key}\": {},\n",
            sweep
                .as_ref()
                .map_or_else(|| "null".to_string(), json_group)
        ));
    }
    let c = &report.certificate;
    out.push_str(&format!(
        "  \"certificate\": {{\"design_npf\": {}, \"counting_upper\": {}, \"empirical_max\": {}, \"pass\": {}}}\n",
        c.design_npf, c.counting_upper, c.empirical_max, c.pass,
    ));
    out.push_str("}\n");
    out
}

/// Generates, evaluates (serially), and assembles a whole campaign.
///
/// The parallel equivalent lives in `ftbar-service` (`run_campaign`);
/// both produce identical reports.
pub fn run(problem: &Problem, schedule: &Schedule, config: &ScenarioConfig) -> ReliabilityReport {
    let scenarios = generate(problem, schedule, config);
    let deadline = config.deadline.unwrap_or_else(|| schedule.completion());
    let results: Vec<ScenarioResult> = scenarios
        .iter()
        .map(|s| evaluate(problem, schedule, s, deadline))
        .collect();
    assemble(problem, schedule, config, &scenarios, &results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbar_core::ftbar;
    use ftbar_model::paper_example;

    fn setup() -> (Problem, Schedule) {
        let p = paper_example();
        let s = ftbar::schedule(&p).unwrap();
        (p, s)
    }

    #[test]
    fn binomial_matches_pascal() {
        assert_eq!(binomial(3, 1), 3);
        assert_eq!(binomial(3, 2), 3);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(2, 5), 0);
        assert!(binomial(64, 32) > 1 << 60);
    }

    #[test]
    fn generation_is_exhaustive_through_npf() {
        let (p, s) = setup();
        let cfg = ScenarioConfig {
            beyond: 0,
            ..Default::default()
        };
        let scenarios = generate(&p, &s, &cfg);
        // Nominal + C(3,1) single-failure subsets.
        assert_eq!(scenarios.len(), 1 + 3);
        assert_eq!(scenarios[0].kind, ScenarioKind::Nominal);
        let singles: Vec<ProcId> = scenarios[1..]
            .iter()
            .map(|sc| {
                assert_eq!(sc.kind, ScenarioKind::Exhaustive);
                assert_eq!(sc.procs.len(), 1);
                assert_eq!(sc.procs[0].1, Time::ZERO);
                sc.procs[0].0
            })
            .collect();
        assert_eq!(singles, vec![ProcId(0), ProcId(1), ProcId(2)]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (p, s) = setup();
        let cfg = ScenarioConfig {
            beyond: 2,
            links: true,
            jitter_samples: 3,
            exhaustive_cap: 0,
            ..Default::default()
        };
        assert_eq!(generate(&p, &s, &cfg), generate(&p, &s, &cfg));
        let other = ScenarioConfig { seed: 1, ..cfg };
        assert_ne!(generate(&p, &s, &cfg), generate(&p, &s, &other));
    }

    #[test]
    fn beyond_npf_sizes_sample_when_over_cap() {
        let (p, s) = setup();
        let cfg = ScenarioConfig {
            beyond: 1,
            exhaustive_cap: 0,
            samples_per_size: 5,
            ..Default::default()
        };
        let scenarios = generate(&p, &s, &cfg);
        let sampled: Vec<&Scenario> = scenarios
            .iter()
            .filter(|sc| sc.kind == ScenarioKind::Sampled)
            .collect();
        assert_eq!(sampled.len(), 5);
        for sc in sampled {
            assert_eq!(sc.procs.len(), 2, "size Npf+1 on the paper example");
            let mut procs: Vec<ProcId> = sc.procs.iter().map(|&(p, _)| p).collect();
            procs.dedup();
            assert_eq!(procs.len(), 2, "distinct processors");
        }
    }

    #[test]
    fn paper_example_certificate_passes() {
        let (p, s) = setup();
        let report = run(&p, &s, &ScenarioConfig::default());
        assert_eq!(report.certificate.design_npf, 1);
        assert_eq!(report.certificate.empirical_max, 1);
        assert!(report.certificate.pass);
        assert!(report.sizes[0].exhaustive);
        assert_eq!(
            report.sizes[0].group.survived,
            report.sizes[0].group.scenarios
        );
        // Size 2 kills two of three processors: at least one op must drop.
        assert!(report.sizes[1].group.survived < report.sizes[1].group.scenarios);
        let text = render_text(&report);
        assert!(text.contains("certificate: PASS"), "{text}");
    }

    #[test]
    fn nominal_scenario_meets_deadline_with_zero_waste_structure() {
        let (p, s) = setup();
        let scenarios = generate(&p, &s, &ScenarioConfig::default());
        let r = evaluate(&p, &s, &scenarios[0], s.completion());
        assert!(r.survived());
        assert!(r.deadline_met);
        assert_eq!(r.dropped_ops, 0);
        assert_eq!(r.comms_cancelled, 0);
        // Npf = 1 duplicates every op: replication overhead is real work.
        assert!(r.wasted_work > Time::ZERO);
        assert!(r.useful_work > Time::ZERO);
    }

    #[test]
    fn jitter_scenarios_survive_and_stretch() {
        let (p, s) = setup();
        let cfg = ScenarioConfig {
            beyond: 0,
            jitter_samples: 4,
            jitter_frac: 0.5,
            ..Default::default()
        };
        let report = run(&p, &s, &cfg);
        let jitter = report.jitter_sweep.expect("jitter sweep present");
        assert_eq!(jitter.survived, jitter.scenarios);
        assert!(
            jitter.worst_completion.unwrap() >= report.nominal_completion.unwrap(),
            "jitter only delays"
        );
    }

    #[test]
    fn link_sweep_reports_on_paper_example() {
        let (p, s) = setup();
        let cfg = ScenarioConfig {
            beyond: 0,
            links: true,
            ..Default::default()
        };
        let scenarios = generate(&p, &s, &cfg);
        // 3 single-link scenarios + 3 sampled link+proc combos.
        let links: Vec<&Scenario> = scenarios
            .iter()
            .filter(|sc| sc.kind == ScenarioKind::Link)
            .collect();
        assert_eq!(links.len(), 6);
        assert!(links[3..].iter().all(|sc| sc.procs.len() == 1));
        let report = run(&p, &s, &cfg);
        assert_eq!(report.link_sweep.unwrap().scenarios, 6);
    }

    #[test]
    fn json_render_is_stable_and_wellformed() {
        let (p, s) = setup();
        let report = run(&p, &s, &ScenarioConfig::default());
        let a = render_json(&report);
        let b = render_json(&run(&p, &s, &ScenarioConfig::default()));
        assert_eq!(a, b);
        assert!(a.contains("\"certificate\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
