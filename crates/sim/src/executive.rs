//! A threaded distributed executive: runs a static schedule on real OS
//! threads with message passing, the concurrency analogue of the executive
//! SynDEx generates from a schedule.
//!
//! * one **compute thread per processor**, executing its replica sequence
//!   in static order with blocking receives (no timeouts — paper §2
//!   point 4);
//! * one **communication thread per link**, transmitting the link's comms
//!   in the grant order fixed offline by the analytic replay (the loaded
//!   "TDMA table"; fault-free it is exactly the booked static order of
//!   paper §4.2 — under failures the replay's forfeit arbitration keeps it
//!   deadlock-free);
//! * data travels as length-prefixed byte messages ([`crate::wire`]) over
//!   `crossbeam` channels; receivers take the **first** arrival for each
//!   dependency and discard later replicas (active replication);
//! * time is *logical*: every action carries the timestamp algebra of the
//!   analytic replay, so the executive's outcome is deterministic and — as
//!   the integration tests assert — byte-identical to
//!   [`ftbar_core::replay`], while the interleaving of real threads is
//!   exercised for races and deadlocks.
//!
//! Fail-silent failures are injected by timestamp: a processor whose
//! replica would complete after its failure instant publishes nothing from
//! then on. (Cancellation notices exist only so the *test harness*
//! terminates; the modelled system relies on replication, not on
//! notifications.)
//!
//! Multi-hop (store-and-forward) routes are not supported by the threaded
//! executive — [`run`] returns [`ExecutiveError::MultiHop`] — since every
//! experimental topology in the paper is fully connected.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use ftbar_core::{CommId, FailureScenario, ReplicaId, Schedule};
use ftbar_model::{OpId, Problem, ProcId, Time};
use parking_lot::{Condvar, Mutex};

use crate::wire::{decode, encode, Message};

/// Error returned by [`run`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecutiveError {
    /// The schedule contains a multi-hop comm.
    MultiHop {
        /// The offending comm.
        comm: CommId,
    },
}

impl core::fmt::Display for ExecutiveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecutiveError::MultiHop { comm } => {
                write!(f, "{comm} uses a multi-hop route; the threaded executive requires point-to-point reachability")
            }
        }
    }
}

impl std::error::Error for ExecutiveError {}

/// Outcome of one replica under the executive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Ran to completion at the given logical window.
    Completed {
        /// Logical start.
        start: Time,
        /// Logical end.
        end: Time,
    },
    /// Produced nothing (processor failed or inputs never arrived).
    Lost,
}

/// Result of [`run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutiveReport {
    /// Per-replica outcomes, indexed by [`ReplicaId`].
    pub outcomes: Vec<ExecOutcome>,
    /// Total messages physically delivered over links.
    pub messages_delivered: usize,
}

impl ExecutiveReport {
    /// End of the first completed replica of `op`, if any.
    pub fn op_completion(&self, schedule: &Schedule, op: OpId) -> Option<Time> {
        schedule
            .replicas_of(op)
            .iter()
            .filter_map(|&r| match self.outcomes[r.index()] {
                ExecOutcome::Completed { end, .. } => Some(end),
                ExecOutcome::Lost => None,
            })
            .min()
    }
}

/// One mailbox item per processor: the comm, and `Some(wire bytes)` for a
/// delivery or `None` for a cancellation notice.
type Delivery = (CommId, Option<bytes::Bytes>);

/// State of one comm's source data, shared between the producing compute
/// thread and the link thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Pending,
    Ready(Time),
    Cancelled,
}

#[derive(Debug)]
struct CommSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl CommSlot {
    fn new() -> Self {
        CommSlot {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        }
    }

    fn set(&self, s: SlotState) {
        let mut g = self.state.lock();
        if *g == SlotState::Pending {
            *g = s;
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> SlotState {
        let mut g = self.state.lock();
        while *g == SlotState::Pending {
            self.cv.wait(&mut g);
        }
        *g
    }
}

/// Runs the schedule on real threads under the given failure scenario and
/// returns per-replica outcomes with logical timestamps.
///
/// # Errors
///
/// [`ExecutiveError::MultiHop`] if any comm spans more than one link.
pub fn run(
    problem: &Problem,
    schedule: &Schedule,
    scenario: &FailureScenario,
) -> Result<ExecutiveReport, ExecutiveError> {
    for c in 0..schedule.comm_count() {
        if schedule.comm(CommId(c as u32)).hops.len() != 1 {
            return Err(ExecutiveError::MultiHop {
                comm: CommId(c as u32),
            });
        }
    }

    let n_procs = schedule.proc_count();
    // The analytic replay fixes the realized per-link grant order and comm
    // arrival instants (the offline "TDMA table" a deployment would load
    // into its communication units — under the forfeit arbitration of
    // `ftbar_core::replay`, the nominal order is exactly the booked order).
    // Processor-side timing below is computed live from deliveries and is
    // asserted equal to the replay by the test suite.
    let ana = ftbar_core::replay(problem, schedule, scenario);
    let mut realized: Vec<Vec<(CommId, Option<Time>)>> = vec![Vec::new(); schedule.link_count()];
    {
        let mut delivered: Vec<Vec<(Time, CommId)>> = vec![Vec::new(); schedule.link_count()];
        for c in 0..schedule.comm_count() {
            let cid = CommId(c as u32);
            let link = schedule.comm(cid).hops[0].link.index();
            match ana.comm_arrival(cid) {
                Some(t) => delivered[link].push((t, cid)),
                None => realized[link].push((cid, None)),
            }
        }
        for (link, mut d) in delivered.into_iter().enumerate() {
            d.sort();
            // Cancelled notices first (they unblock starving receivers
            // immediately), then deliveries in realized time order.
            let mut seq: Vec<(CommId, Option<Time>)> = realized[link].clone();
            seq.extend(d.into_iter().map(|(t, c)| (c, Some(t))));
            realized[link] = seq;
        }
    }
    let realized = Arc::new(realized);

    let slots: Arc<Vec<CommSlot>> = Arc::new(
        (0..schedule.comm_count())
            .map(|_| CommSlot::new())
            .collect(),
    );
    let mut senders: Vec<Sender<Delivery>> = Vec::new();
    let mut receivers: Vec<Option<Receiver<Delivery>>> = Vec::new();
    for _ in 0..n_procs {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let outcome_cells: Arc<Vec<Mutex<ExecOutcome>>> = Arc::new(
        (0..schedule.replica_count())
            .map(|_| Mutex::new(ExecOutcome::Lost))
            .collect(),
    );
    let delivered_count = Arc::new(Mutex::new(0usize));

    std::thread::scope(|scope| {
        // Link threads: transmit in the realized grant order. A comm the
        // replay cancelled emits a cancellation notice without waiting (its
        // producer may never publish); a delivered comm waits for its
        // producer's data, then puts it on the wire with the realized
        // arrival timestamp.
        for link in problem.arch().links() {
            let slots = Arc::clone(&slots);
            let senders = senders.clone();
            let delivered_count = Arc::clone(&delivered_count);
            let realized = Arc::clone(&realized);
            scope.spawn(move || {
                for &(cid, arrival) in &realized[link.index()] {
                    let comm = schedule.comm(cid);
                    let dst_proc = schedule.replica(comm.dst).proc;
                    let Some(arrival) = arrival else {
                        let _ = senders[dst_proc.index()].send((cid, None));
                        continue;
                    };
                    match slots[cid.index()].wait() {
                        SlotState::Ready(_) => {
                            let msg = Message {
                                comm: cid.0,
                                dep: comm.dep.0,
                                timestamp: arrival,
                            };
                            *delivered_count.lock() += 1;
                            let _ = senders[dst_proc.index()].send((cid, Some(encode(&msg))));
                        }
                        SlotState::Cancelled => {
                            // Diverging from the replay is impossible for a
                            // deterministic schedule; unblock the receiver
                            // defensively anyway.
                            let _ = senders[dst_proc.index()].send((cid, None));
                        }
                        SlotState::Pending => unreachable!("wait() never returns Pending"),
                    }
                }
            });
        }
        drop(senders);

        // Compute threads.
        for proc in problem.arch().procs() {
            let rx = receivers[proc.index()].take().expect("one thread per proc");
            let slots = Arc::clone(&slots);
            let outcome_cells = Arc::clone(&outcome_cells);
            scope.spawn(move || {
                compute_thread(
                    problem,
                    schedule,
                    scenario,
                    proc,
                    rx,
                    &slots,
                    &outcome_cells,
                );
            });
        }
    });

    let outcomes = outcome_cells.iter().map(|c| *c.lock()).collect();
    let messages_delivered = *delivered_count.lock();
    Ok(ExecutiveReport {
        outcomes,
        messages_delivered,
    })
}

/// Cancels every not-yet-published outgoing comm of the replicas in
/// `order[from..]`.
fn cancel_from(schedule: &Schedule, slots: &[CommSlot], order: &[ReplicaId], from: usize) {
    for &rid in &order[from..] {
        for c in schedule.outgoing_comms(rid) {
            slots[c.index()].set(SlotState::Cancelled);
        }
    }
}

fn compute_thread(
    problem: &Problem,
    schedule: &Schedule,
    scenario: &FailureScenario,
    proc: ProcId,
    rx: Receiver<Delivery>,
    slots: &[CommSlot],
    outcomes: &[Mutex<ExecOutcome>],
) {
    let order: Vec<ReplicaId> = schedule.proc_order(proc).to_vec();
    let fail = scenario.fail_time(proc);
    // First-arrival bookkeeping: comm -> Some(arrival) / None (cancelled).
    let mut inbox: std::collections::HashMap<CommId, Option<Time>> =
        std::collections::HashMap::new();
    let mut local_end: std::collections::HashMap<OpId, Time> = std::collections::HashMap::new();
    let mut prev_end = Time::ZERO;

    for (idx, &rid) in order.iter().enumerate() {
        let rep = schedule.replica(rid);
        // Wired inputs: group incoming comms by dependency.
        let mut by_dep: std::collections::BTreeMap<u32, Vec<CommId>> =
            std::collections::BTreeMap::new();
        for c in schedule.incoming_comms(rid) {
            by_dep.entry(schedule.comm(c).dep.0).or_default().push(c);
        }
        let mut ready = Time::ZERO;
        let mut starved = false;
        for (dep_raw, comms) in &by_dep {
            let _ = dep_raw;
            // The first *logical* arrival among this dependency's comms. In
            // a deployed system physical time equals logical time, so the
            // first message received is the logical minimum; here thread
            // scheduling is unrelated to timestamps, so we wait until every
            // wired comm resolved (delivered or cancelled) and take the
            // minimum — same value, deterministic.
            let arrival = loop {
                if comms.iter().all(|c| inbox.contains_key(c)) {
                    break comms
                        .iter()
                        .filter_map(|c| inbox.get(c).copied().flatten())
                        .min(); // None => every source cancelled: starvation
                }
                match rx.recv() {
                    Ok((cid, payload)) => {
                        let t = payload
                            .map(|b| decode(&b).expect("well-formed wire message").timestamp);
                        inbox.insert(cid, t);
                    }
                    Err(_) => {
                        // All links done: everything pending is resolved.
                        break comms
                            .iter()
                            .filter_map(|c| inbox.get(c).copied().flatten())
                            .min();
                    }
                }
            };
            match arrival {
                Some(t) => ready = ready.max(t),
                None => {
                    starved = true;
                    break;
                }
            }
        }
        if starved {
            // Blocking receive would hang forever; the harness marks this
            // replica (and the rest of the sequence) lost.
            cancel_from(schedule, slots, &order, idx);
            return;
        }
        // Local (unwired) dependencies.
        for (dep, pred) in problem.alg().sched_preds(rep.op) {
            let wired = by_dep.contains_key(&dep.0);
            if !wired {
                match local_end.get(&pred) {
                    Some(&t) => ready = ready.max(t),
                    None => {
                        // Local producer lost => this proc already returned.
                        cancel_from(schedule, slots, &order, idx);
                        return;
                    }
                }
            }
        }
        let start = prev_end.max(ready);
        let end = start + rep.slot.duration();
        if let Some(tf) = fail {
            if end > tf {
                // Fail-silent: this and all later replicas publish nothing.
                cancel_from(schedule, slots, &order, idx);
                return;
            }
        }
        *outcomes[rid.index()].lock() = ExecOutcome::Completed { start, end };
        local_end.insert(rep.op, end);
        prev_end = end;
        for c in schedule.outgoing_comms(rid) {
            slots[c.index()].set(SlotState::Ready(end));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbar_core::{ftbar, replay, ReplicaOutcome};
    use ftbar_model::paper_example;

    fn agrees_with_replay(scenario: &FailureScenario) {
        let p = paper_example();
        let s = ftbar::schedule(&p).unwrap();
        let exec = run(&p, &s, scenario).unwrap();
        let ana = replay(&p, &s, scenario);
        for i in 0..s.replica_count() {
            let expected = match ana.outcomes()[i] {
                ReplicaOutcome::Completed { start, end } => ExecOutcome::Completed { start, end },
                ReplicaOutcome::Lost => ExecOutcome::Lost,
            };
            assert_eq!(
                exec.outcomes[i], expected,
                "replica {i} diverges from the analytic replay"
            );
        }
    }

    #[test]
    fn nominal_execution_matches_replay() {
        agrees_with_replay(&FailureScenario::none(3));
    }

    #[test]
    fn single_failures_match_replay() {
        for proc in 0..3u32 {
            agrees_with_replay(&FailureScenario::single(3, ProcId(proc), Time::ZERO));
        }
    }

    #[test]
    fn mid_schedule_failures_match_replay() {
        for ticks in [1_000u64, 3_000, 7_500] {
            agrees_with_replay(&FailureScenario::single(
                3,
                ProcId(0),
                Time::from_ticks(ticks),
            ));
        }
    }

    #[test]
    fn double_failures_terminate_cleanly() {
        // Beyond Npf the system cannot mask, but the harness must not hang.
        let p = paper_example();
        let s = ftbar::schedule(&p).unwrap();
        let scen = FailureScenario::multi(3, &[(ProcId(0), Time::ZERO), (ProcId(1), Time::ZERO)]);
        let exec = run(&p, &s, &scen).unwrap();
        let i = p.alg().op_by_name("I").unwrap();
        assert!(exec.op_completion(&s, i).is_none());
    }

    #[test]
    fn repeated_runs_are_deterministic_despite_threading() {
        let p = paper_example();
        let s = ftbar::schedule(&p).unwrap();
        let scen = FailureScenario::single(3, ProcId(1), Time::from_units(2.0));
        let a = run(&p, &s, &scen).unwrap();
        for _ in 0..8 {
            let b = run(&p, &s, &scen).unwrap();
            assert_eq!(a, b);
        }
    }
}
