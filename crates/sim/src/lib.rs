//! Fault-injection simulation and a threaded distributed executive for
//! FTBAR schedules (the runtime side of the paper, §5).
//!
//! * [`FaultPlan`] — fail-silent failures over absolute time, permanent or
//!   intermittent;
//! * [`simulate`] — multi-iteration discrete-event simulation with the two
//!   failure-handling options of §5 ([`Detection::None`] /
//!   [`Detection::Array`]);
//! * [`executive`] — the schedule running on real OS threads with
//!   channel-based send/receive and first-arrival-wins input selection,
//!   cross-validated against the analytic replay;
//! * [`scenario`] — the contingency engine: exhaustive N−k fault sweeps,
//!   Monte Carlo campaigns, and the Goemans/Lynch/Saias-style
//!   fault-tolerance certificate;
//! * [`wire`] — the byte-level message encoding used by the executive.
//!
//! # Example
//!
//! ```
//! use ftbar_core::ftbar;
//! use ftbar_model::{paper_example, ProcId, Time};
//! use ftbar_sim::{simulate, Detection, FaultPlan, SimConfig};
//!
//! let problem = paper_example();
//! let schedule = ftbar::schedule(&problem)?;
//! let mut plan = FaultPlan::new(3);
//! plan.permanent(ProcId(0), Time::ZERO);
//! let report = simulate(&problem, &schedule, &plan, &SimConfig {
//!     iterations: 3,
//!     detection: Detection::Array,
//! });
//! assert!(report.all_masked()); // Npf = 1 masks the single failure
//! # Ok::<(), ftbar_core::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod des;
pub mod executive;
mod fault;
pub mod scenario;
pub mod wire;

pub use des::{simulate, Detection, IterationReport, SimConfig, SimReport};
pub use fault::{FaultPlan, FaultWindow, LinkFaultWindow};
