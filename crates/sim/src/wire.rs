//! Wire encoding of executive messages.
//!
//! A deployed FTBAR executive sends values over real links; the threaded
//! executive mirrors that with a fixed little binary layout (all fields
//! big-endian):
//!
//! ```text
//! magic  u16 = 0xF7BA
//! comm   u32   (CommId of the transfer)
//! dep    u32   (DepId of the carried dependency)
//! time   u64   (logical timestamp, ticks)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ftbar_model::Time;

/// Magic header of every message.
pub const MAGIC: u16 = 0xF7BA;
/// Encoded length in bytes.
pub const MESSAGE_LEN: usize = 2 + 4 + 4 + 8;

/// One data message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Comm identifier.
    pub comm: u32,
    /// Dependency identifier.
    pub dep: u32,
    /// Logical delivery timestamp.
    pub timestamp: Time,
}

/// Encodes a message into a frozen byte buffer.
pub fn encode(msg: &Message) -> Bytes {
    let mut b = BytesMut::with_capacity(MESSAGE_LEN);
    b.put_u16(MAGIC);
    b.put_u32(msg.comm);
    b.put_u32(msg.dep);
    b.put_u64(msg.timestamp.ticks());
    b.freeze()
}

/// Decodes a message.
///
/// Returns `None` on a short buffer or a bad magic header.
pub fn decode(mut buf: &[u8]) -> Option<Message> {
    if buf.len() < MESSAGE_LEN || buf.get_u16() != MAGIC {
        return None;
    }
    let comm = buf.get_u32();
    let dep = buf.get_u32();
    let timestamp = Time::from_ticks(buf.get_u64());
    Some(Message {
        comm,
        dep,
        timestamp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Message {
            comm: 42,
            dep: 7,
            timestamp: Time::from_units(15.05),
        };
        let bytes = encode(&m);
        assert_eq!(bytes.len(), MESSAGE_LEN);
        assert_eq!(decode(&bytes), Some(m));
    }

    #[test]
    fn rejects_bad_magic() {
        let m = Message {
            comm: 1,
            dep: 2,
            timestamp: Time::ZERO,
        };
        let mut bytes = encode(&m).to_vec();
        bytes[0] = 0;
        assert_eq!(decode(&bytes), None);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(decode(&[0xF7]), None);
        assert_eq!(decode(&[]), None);
    }
}
