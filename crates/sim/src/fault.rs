//! Fault plans: fail-silent processor **and link** failures over absolute
//! simulation time, permanent or intermittent (paper §3.1, §5; link
//! failures are the §7 extension).

use ftbar_model::{LinkId, ProcId, Time};
use serde::{Deserialize, Serialize};

/// One fail-silent window of a processor: silent during `[from, until)`
/// (`until = None` ⇒ permanent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// The failing processor.
    pub proc: ProcId,
    /// First silent instant (absolute simulation time).
    pub from: Time,
    /// First instant after recovery; `None` for a permanent failure.
    pub until: Option<Time>,
}

/// One fail-silent window of a link: transmits nothing during
/// `[from, until)` (`until = None` ⇒ permanent). Transfers cut mid-flight
/// are discarded by the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFaultWindow {
    /// The failing link.
    pub link: LinkId,
    /// First silent instant (absolute simulation time).
    pub from: Time,
    /// First instant after recovery; `None` for a permanent failure.
    pub until: Option<Time>,
}

/// A set of fault windows over the whole (multi-iteration) simulation.
///
/// Link faults are simulated on every topology — including fully connected
/// architectures, where the *scheduler* skips failure-pattern tracking
/// because its model assumes links never fail (DESIGN.md §6). A schedule
/// built under that assumption carries no link-failure guarantee, so a
/// link fault there may well break masking; the simulation reports
/// whatever actually happens instead of silently dropping the fault.
///
/// # Example
///
/// ```
/// use ftbar_model::{LinkId, ProcId, Time};
/// use ftbar_sim::FaultPlan;
///
/// let mut plan = FaultPlan::new(3);
/// plan.permanent(ProcId(0), Time::from_units(5.0));
/// plan.intermittent(ProcId(2), Time::from_units(1.0), Time::from_units(2.0));
/// plan.link_permanent(LinkId(1), Time::from_units(2.0));
/// assert!(plan.is_failed(ProcId(0), Time::from_units(9.0)));
/// assert!(!plan.is_failed(ProcId(2), Time::from_units(3.0)));
/// assert!(plan.is_link_failed(LinkId(1), Time::from_units(2.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    proc_count: usize,
    windows: Vec<FaultWindow>,
    link_windows: Vec<LinkFaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no failure) for `proc_count` processors.
    pub fn new(proc_count: usize) -> Self {
        FaultPlan {
            proc_count,
            windows: Vec::new(),
            link_windows: Vec::new(),
        }
    }

    /// Adds a permanent failure of `proc` starting at `from`.
    pub fn permanent(&mut self, proc: ProcId, from: Time) -> &mut Self {
        self.windows.push(FaultWindow {
            proc,
            from,
            until: None,
        });
        self
    }

    /// Adds an intermittent failure of `proc` during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn intermittent(&mut self, proc: ProcId, from: Time, until: Time) -> &mut Self {
        assert!(until > from, "empty failure window");
        self.windows.push(FaultWindow {
            proc,
            from,
            until: Some(until),
        });
        self
    }

    /// Number of processors covered by the plan.
    pub fn proc_count(&self) -> usize {
        self.proc_count
    }

    /// All windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// True if `proc` is silent at instant `t`.
    pub fn is_failed(&self, proc: ProcId, t: Time) -> bool {
        self.windows
            .iter()
            .any(|w| w.proc == proc && w.from <= t && w.until.is_none_or(|u| t < u))
    }

    /// The first instant within `[start, end)` at which `proc` is silent,
    /// if any.
    pub fn first_failure_in(&self, proc: ProcId, start: Time, end: Time) -> Option<Time> {
        self.windows
            .iter()
            .filter(|w| w.proc == proc)
            .filter_map(|w| {
                let begin = w.from.max(start);
                let still_failed = w.until.is_none_or(|u| begin < u);
                (begin < end && still_failed).then_some(begin)
            })
            .min()
    }

    /// Processors with at least one window, in id order.
    pub fn affected_procs(&self) -> Vec<ProcId> {
        let mut v: Vec<ProcId> = self.windows.iter().map(|w| w.proc).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Adds a permanent failure of `link` starting at `from`.
    pub fn link_permanent(&mut self, link: LinkId, from: Time) -> &mut Self {
        self.link_windows.push(LinkFaultWindow {
            link,
            from,
            until: None,
        });
        self
    }

    /// Adds an intermittent failure of `link` during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn link_intermittent(&mut self, link: LinkId, from: Time, until: Time) -> &mut Self {
        assert!(until > from, "empty failure window");
        self.link_windows.push(LinkFaultWindow {
            link,
            from,
            until: Some(until),
        });
        self
    }

    /// All link windows, in insertion order.
    pub fn link_windows(&self) -> &[LinkFaultWindow] {
        &self.link_windows
    }

    /// True if `link` is silent at instant `t`.
    pub fn is_link_failed(&self, link: LinkId, t: Time) -> bool {
        self.link_windows
            .iter()
            .any(|w| w.link == link && w.from <= t && w.until.is_none_or(|u| t < u))
    }

    /// The first instant within `[start, end)` at which `link` is silent,
    /// if any.
    pub fn first_link_failure_in(&self, link: LinkId, start: Time, end: Time) -> Option<Time> {
        self.link_windows
            .iter()
            .filter(|w| w.link == link)
            .filter_map(|w| {
                let begin = w.from.max(start);
                let still_failed = w.until.is_none_or(|u| begin < u);
                (begin < end && still_failed).then_some(begin)
            })
            .min()
    }

    /// Links with at least one window, in id order.
    pub fn affected_links(&self) -> Vec<LinkId> {
        let mut v: Vec<LinkId> = self.link_windows.iter().map(|w| w.link).collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> Time {
        Time::from_units(u)
    }

    #[test]
    fn permanent_failure_is_forever() {
        let mut p = FaultPlan::new(2);
        p.permanent(ProcId(0), t(3.0));
        assert!(!p.is_failed(ProcId(0), t(2.9)));
        assert!(p.is_failed(ProcId(0), t(3.0)));
        assert!(p.is_failed(ProcId(0), t(1e6)));
        assert!(!p.is_failed(ProcId(1), t(5.0)));
    }

    #[test]
    fn intermittent_failure_recovers() {
        let mut p = FaultPlan::new(1);
        p.intermittent(ProcId(0), t(1.0), t(2.0));
        assert!(!p.is_failed(ProcId(0), t(0.5)));
        assert!(p.is_failed(ProcId(0), t(1.5)));
        assert!(!p.is_failed(ProcId(0), t(2.0)), "until is exclusive");
    }

    #[test]
    fn first_failure_in_window_queries() {
        let mut p = FaultPlan::new(2);
        p.intermittent(ProcId(0), t(5.0), t(6.0));
        p.permanent(ProcId(0), t(20.0));
        assert_eq!(p.first_failure_in(ProcId(0), t(0.0), t(4.0)), None);
        assert_eq!(p.first_failure_in(ProcId(0), t(0.0), t(10.0)), Some(t(5.0)));
        assert_eq!(
            p.first_failure_in(ProcId(0), t(5.5), t(10.0)),
            Some(t(5.5)),
            "window already open at range start"
        );
        assert_eq!(p.first_failure_in(ProcId(0), t(7.0), t(10.0)), None);
        assert_eq!(
            p.first_failure_in(ProcId(0), t(15.0), t(30.0)),
            Some(t(20.0))
        );
        assert_eq!(p.first_failure_in(ProcId(1), t(0.0), t(99.0)), None);
    }

    #[test]
    #[should_panic(expected = "empty failure window")]
    fn empty_window_rejected() {
        let mut p = FaultPlan::new(1);
        p.intermittent(ProcId(0), t(2.0), t(2.0));
    }

    #[test]
    fn link_windows_mirror_proc_semantics() {
        let mut p = FaultPlan::new(4);
        p.link_intermittent(LinkId(3), t(1.0), t(2.0));
        p.link_permanent(LinkId(0), t(10.0));
        assert!(p.is_link_failed(LinkId(3), t(1.5)));
        assert!(!p.is_link_failed(LinkId(3), t(2.0)), "until is exclusive");
        assert!(p.is_link_failed(LinkId(0), t(1e9)));
        assert_eq!(
            p.first_link_failure_in(LinkId(3), t(0.0), t(5.0)),
            Some(t(1.0))
        );
        assert_eq!(p.first_link_failure_in(LinkId(3), t(3.0), t(5.0)), None);
        assert_eq!(p.affected_links(), vec![LinkId(0), LinkId(3)]);
        assert!(
            p.affected_procs().is_empty(),
            "link faults are not proc faults"
        );
    }

    #[test]
    fn affected_procs_deduplicates() {
        let mut p = FaultPlan::new(3);
        p.intermittent(ProcId(2), t(0.0), t(1.0));
        p.intermittent(ProcId(2), t(5.0), t(6.0));
        p.permanent(ProcId(0), t(9.0));
        assert_eq!(p.affected_procs(), vec![ProcId(0), ProcId(2)]);
    }
}
